(* The query service end to end: wire protocol, backoff/retry policy,
   single-writer lockfiles, and a live server exercised over a Unix
   socket — answer sources (fresh/memo/store), duplicate coalescing,
   bounded admission with explicit shedding, and graceful drain. *)

module J = Core.Bench_schema
module P = Wr_serve.Protocol
module Server = Wr_serve.Server
module Client = Wr_serve.Client
module Evaluate = Core.Evaluate
module Fault = Wr_util.Fault

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The server drives the process-global evaluation state; every test
   starts and ends clean. *)
let clean () =
  Fault.configure [];
  Evaluate.set_strict false;
  Evaluate.set_loop_budget_ms None;
  Evaluate.detach_journal ();
  Evaluate.detach_store ();
  Evaluate.reset_quarantine ();
  Evaluate.clear_cache ()

let with_clean_state f =
  clean ();
  Fun.protect ~finally:clean f

let with_tmp_dir f =
  let dir = Filename.temp_file "wrserve-test" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- protocol ----------------------------------------------------------- *)

let parse_ok line =
  match P.parse_request line with
  | Ok env -> env
  | Error (_, msg) -> Alcotest.failf "parse failed on %s: %s" line msg

let test_protocol_roundtrip () =
  let line =
    P.req_eval ~id:"r1" ~registers:32 ~cycles:4 ~deadline_ms:50 ~suite:"sample7" ~index:3
      ~config:"4w2(64)" ()
  in
  (match parse_ok line with
  | { P.id = Some "r1"; req = P.Eval p } ->
      Alcotest.(check string) "suite" "sample7" p.P.suite;
      Alcotest.(check int) "index" 3 p.P.index;
      Alcotest.(check int) "registers" 32 p.P.registers;
      Alcotest.(check (option int)) "deadline" (Some 50) p.P.deadline_ms;
      Alcotest.(check int) "cycles" 4 (Wr_machine.Cycle_model.cycles p.P.cycle_model)
  | _ -> Alcotest.fail "wrong eval envelope");
  (match parse_ok (P.req_suite ~suite:"full" ~config:"2w2(64)" ()) with
  | { P.id = None; req = P.Suite _ } -> ()
  | _ -> Alcotest.fail "wrong suite envelope");
  (match parse_ok (P.req_health ~id:"h" ()) with
  | { P.id = Some "h"; req = P.Health } -> ()
  | _ -> Alcotest.fail "wrong health envelope");
  match parse_ok (P.req_shutdown ()) with
  | { P.req = P.Shutdown; _ } -> ()
  | _ -> Alcotest.fail "wrong shutdown envelope"

let test_protocol_defaults () =
  match parse_ok {|{"op":"eval","suite":"sample5","index":0,"config":"4w2(128)"}|} with
  | { P.req = P.Eval p; _ } ->
      Alcotest.(check int) "registers default to the config's" 128 p.P.registers;
      Alcotest.(check int) "cycle model defaults from access time"
        (Wr_machine.Cycle_model.cycles (Wr_cost.Access_time.cycle_model_of p.P.config))
        (Wr_machine.Cycle_model.cycles p.P.cycle_model)
  | _ -> Alcotest.fail "wrong envelope"

let test_protocol_rejects () =
  List.iter
    (fun line ->
      match P.parse_request line with
      | Ok _ -> Alcotest.failf "accepted %s" line
      | Error _ -> ())
    [
      "";
      "nope";
      {|{"suite":"full"}|};
      {|{"op":"frobnicate"}|};
      {|{"op":"eval","suite":"full"}|};
      {|{"op":"eval","suite":"full","index":0,"config":"9q9"}|};
      {|{"op":"eval","suite":"full","index":0,"config":"4w2(64)","cycles":7}|};
    ];
  (* The id survives a bad request so the error reply can be matched. *)
  match P.parse_request {|{"op":"eval","id":"x7"}|} with
  | Error (Some "x7", _) -> ()
  | _ -> Alcotest.fail "id lost on the error path"

let test_reply_shapes () =
  let parse s = match J.parse s with Ok j -> j | Error e -> Alcotest.fail e in
  let busy = parse (P.busy_reply ~id:(Some "b") "full up") in
  Alcotest.(check bool) "busy reply not ok" true (J.member "ok" busy = Some (J.Bool false));
  Alcotest.(check bool) "busy reply retryable" true (J.member "busy" busy = Some (J.Bool true));
  let err = parse (P.error_reply ~id:None "no such loop") in
  Alcotest.(check bool) "error reply not ok" true (J.member "ok" err = Some (J.Bool false));
  Alcotest.(check bool) "error reply not retryable" true
    (J.member "busy" err <> Some (J.Bool true))

(* --- backoff ------------------------------------------------------------ *)

let test_backoff_deterministic_and_bounded () =
  let delays seed =
    let rng = Wr_util.Rng.create ~seed in
    List.init 12 (fun a ->
        Wr_util.Backoff.delay_ms ~base_ms:100 ~max_ms:2000 ~jitter:0.25 ~rng ~attempt:a)
  in
  Alcotest.(check (list int)) "same seed, same delays" (delays 42L) (delays 42L);
  List.iteri
    (fun a d ->
      let ceiling = min 2000 (100 * (1 lsl min a 20)) in
      let lo = int_of_float (float_of_int ceiling *. 0.75) in
      let hi = int_of_float (ceil (float_of_int ceiling *. 1.25)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d within jitter band" a)
        true
        (d >= max 1 lo && d <= hi))
    (delays 42L)

let test_retry_policy () =
  let slept = ref [] and calls = ref 0 in
  let sleep ms = slept := ms :: !slept in
  (* Retryable failure: every attempt used, exponential sleeps between. *)
  let r =
    Wr_util.Backoff.retry ~sleep ~attempts:4 ~base_ms:10 ~max_ms:80 ~jitter:0.0 ~seed:1L
      ~retryable:(fun () -> true)
      (fun ~attempt:_ ->
        incr calls;
        Error ())
  in
  Alcotest.(check bool) "final error returned" true (r = Error ());
  Alcotest.(check int) "every attempt used" 4 !calls;
  Alcotest.(check (list int)) "attempts-1 exponential sleeps" [ 40; 20; 10 ] !slept;
  (* Success mid-way stops the retrying. *)
  slept := [];
  calls := 0;
  let r =
    Wr_util.Backoff.retry ~sleep ~attempts:4 ~base_ms:10 ~max_ms:80 ~jitter:0.0 ~seed:1L
      ~retryable:(fun () -> true)
      (fun ~attempt ->
        incr calls;
        if attempt < 2 then Error () else Ok attempt)
  in
  Alcotest.(check bool) "succeeded on the third attempt" true (r = Ok 2);
  Alcotest.(check int) "no attempts after success" 3 !calls;
  Alcotest.(check int) "two sleeps" 2 (List.length !slept);
  (* A non-retryable error returns immediately, without sleeping. *)
  slept := [];
  calls := 0;
  let r =
    Wr_util.Backoff.retry ~sleep ~attempts:4 ~base_ms:10 ~max_ms:80 ~jitter:0.0 ~seed:1L
      ~retryable:(fun () -> false)
      (fun ~attempt:_ ->
        incr calls;
        Error ())
  in
  Alcotest.(check bool) "error surfaced" true (r = Error ());
  Alcotest.(check int) "single attempt" 1 !calls;
  Alcotest.(check (list int)) "no sleeps" [] !slept

(* --- lockfile ----------------------------------------------------------- *)

let test_lockfile () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "LOCK" in
  let l1 =
    match Wr_util.Lockfile.acquire path with Ok l -> l | Error e -> Alcotest.fail e
  in
  (match Wr_util.Lockfile.acquire path with
  | Ok _ -> Alcotest.fail "double acquire succeeded"
  | Error msg ->
      Alcotest.(check bool) "diagnostic names the live owner" true
        (contains msg (string_of_int (Unix.getpid ()))));
  Wr_util.Lockfile.release l1;
  Wr_util.Lockfile.release l1;
  (* idempotent *)
  (match Wr_util.Lockfile.acquire path with
  | Ok l -> Wr_util.Lockfile.release l
  | Error e -> Alcotest.fail e);
  (* A lock whose recorded owner is dead is broken silently. *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "99999999\n");
  (match Wr_util.Lockfile.acquire path with
  | Ok l -> Wr_util.Lockfile.release l
  | Error e -> Alcotest.failf "stale lock not broken: %s" e);
  (* So is one holding garbage (crash between create and write). *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not-a-pid");
  match Wr_util.Lockfile.acquire path with
  | Ok l -> Wr_util.Lockfile.release l
  | Error e -> Alcotest.failf "garbled lock not broken: %s" e

(* --- live server -------------------------------------------------------- *)

let tmp_sock () =
  let path = Filename.temp_file "wrs" ".sock" in
  Sys.remove path;
  path

let start_server ?(queue_max = Server.default_queue_max) ?store () =
  let sock = tmp_sock () in
  let cfg =
    {
      Server.listen = `Unix sock;
      queue_max;
      request_budget_ms = None;
      store;
      ledger = None;
      metrics = None;
      trace = None;
    }
  in
  let th = Thread.create Server.run cfg in
  let rec wait n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "server did not come up"
    else begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  (sock, th)

let stop_server sock th =
  (match Client.round_trip (`Unix sock) ~timeout_ms:10000 (P.req_shutdown ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shutdown: %s" (Client.error_message e));
  Thread.join th

let query_ok sock line =
  match Client.query (`Unix sock) ~timeout_ms:20000 ~attempts:5 ~base_ms:10 ~max_ms:100 line with
  | Ok r -> r
  | Error e -> Alcotest.failf "query: %s" (Client.error_message e)

let member_str k j =
  match J.member k j with Some (J.Str s) -> s | _ -> Alcotest.failf "reply missing %s" k

let result_line j =
  match J.member "result" j with
  | Some r -> J.to_string r
  | None -> Alcotest.fail "reply has no result"

let test_server_lifecycle () =
  with_clean_state @@ fun () ->
  let sock, th = start_server () in
  let req = P.req_eval ~suite:"sample5" ~index:0 ~config:"4w2(64)" () in
  let r1 = query_ok sock req in
  Alcotest.(check string) "first answer is fresh" "fresh" (member_str "source" r1);
  let r2 = query_ok sock req in
  Alcotest.(check string) "second answer from memo" "memo" (member_str "source" r2);
  Alcotest.(check string) "byte-identical result" (result_line r1) (result_line r2);
  let s = query_ok sock (P.req_suite ~suite:"sample5" ~config:"4w2(64)" ()) in
  ignore (result_line s);
  let h = query_ok sock (P.req_health ()) in
  (match J.member "result" h with
  | Some res ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (Printf.sprintf "health reports %s" k) true
            (J.member k res <> None))
        [ "evaluations"; "queue_depth"; "queue_max"; "served"; "shed"; "coalesced";
          "quarantined"; "loop_cache"; "store" ]
  | None -> Alcotest.fail "health has no result");
  stop_server sock th;
  (* Drained: the socket is unlinked and connections fail cleanly. *)
  match Client.round_trip (`Unix sock) ~timeout_ms:500 (P.req_health ()) with
  | Error (Client.Io _) -> ()
  | Ok _ -> Alcotest.fail "server still answering after drain"
  | Error e -> Alcotest.failf "unexpected error class: %s" (Client.error_message e)

let test_server_store_warm_start () =
  with_clean_state @@ fun () ->
  with_tmp_dir @@ fun root ->
  let store = Filename.concat root "store" in
  let req = P.req_eval ~suite:"sample5" ~index:1 ~config:"4w2(64)" () in
  let sock1, th1 = start_server ~store () in
  let r1 = query_ok sock1 req in
  Alcotest.(check string) "cold answer is fresh" "fresh" (member_str "source" r1);
  stop_server sock1 th1;
  (* New server, cold caches, same store directory: the answer comes
     back from disk, byte-identical, with zero re-evaluations. *)
  clean ();
  let evals = Evaluate.evaluations () in
  let sock2, th2 = start_server ~store () in
  let r2 = query_ok sock2 req in
  Alcotest.(check string) "warm answer from the store" "store" (member_str "source" r2);
  Alcotest.(check string) "byte-identical across restart" (result_line r1) (result_line r2);
  Alcotest.(check int) "zero re-evaluations" evals (Evaluate.evaluations ());
  stop_server sock2 th2

let test_server_coalesces_duplicates () =
  with_clean_state @@ fun () ->
  (* Slow evaluation down so concurrent duplicates overlap in flight. *)
  Fault.configure
    [ { Fault.site = "widen"; prob = 1.0; seed = 1L; action = Fault.Delay_ms 300 } ];
  let sock, th = start_server () in
  let req = P.req_eval ~suite:"sample5" ~index:2 ~config:"4w2(64)" () in
  let evals0 = Evaluate.evaluations () in
  let replies = Array.make 3 None in
  let threads =
    Array.init 3 (fun i ->
        Thread.create
          (fun () -> replies.(i) <- Some (Client.round_trip (`Unix sock) ~timeout_ms:30000 req))
          ())
  in
  Array.iter Thread.join threads;
  let results =
    Array.to_list replies
    |> List.map (function
         | Some (Ok line) -> (
             match J.parse line with Ok j -> j | Error e -> Alcotest.fail e)
         | Some (Error e) -> Alcotest.failf "transport error: %s" (Client.error_message e)
         | None -> Alcotest.fail "missing reply")
  in
  Alcotest.(check int) "one evaluation served all three" (evals0 + 1) (Evaluate.evaluations ());
  (match List.map result_line results with
  | [ a; b; c ] ->
      Alcotest.(check string) "identical result bytes" a b;
      Alcotest.(check string) "identical result bytes" a c
  | _ -> assert false);
  List.iter
    (fun j -> Alcotest.(check bool) "all ok" true (J.member "ok" j = Some (J.Bool true)))
    results;
  stop_server sock th

let test_server_overload_sheds_explicitly () =
  with_clean_state @@ fun () ->
  Fault.configure
    [ { Fault.site = "widen"; prob = 1.0; seed = 1L; action = Fault.Delay_ms 300 } ];
  let sock, th = start_server ~queue_max:1 () in
  (* Six distinct points against one admission slot, no retries: the
     excess must be shed with the explicit busy reply — every request
     gets an answer, none hangs, the server stays up. *)
  let n = 6 in
  let replies = Array.make n None in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            let req = P.req_eval ~suite:"sample6" ~index:i ~config:"4w2(64)" () in
            replies.(i) <- Some (Client.round_trip (`Unix sock) ~timeout_ms:30000 req))
          ())
  in
  Array.iter Thread.join threads;
  let served = ref 0 and shed = ref 0 in
  Array.iter
    (function
      | Some (Ok line) -> (
          match J.parse line with
          | Ok j when J.member "ok" j = Some (J.Bool true) -> incr served
          | Ok j when J.member "busy" j = Some (J.Bool true) -> incr shed
          | Ok j -> Alcotest.failf "non-busy failure reply: %s" (J.to_string j)
          | Error e -> Alcotest.fail e)
      | Some (Error e) -> Alcotest.failf "transport error: %s" (Client.error_message e)
      | None -> Alcotest.fail "missing reply")
    replies;
  Alcotest.(check int) "every request answered" n (!served + !shed);
  Alcotest.(check bool) "some requests served" true (!served >= 1);
  Alcotest.(check bool) "overload shed with explicit busy replies" true (!shed >= 1);
  (* Shed traffic retried with backoff eventually lands. *)
  Fault.configure [];
  ignore (query_ok sock (P.req_eval ~suite:"sample6" ~index:5 ~config:"4w2(64)" ()));
  stop_server sock th

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "defaults from the config" `Quick test_protocol_defaults;
          Alcotest.test_case "malformed requests rejected" `Quick test_protocol_rejects;
          Alcotest.test_case "reply shapes" `Quick test_reply_shapes;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic and bounded" `Quick
            test_backoff_deterministic_and_bounded;
          Alcotest.test_case "retry policy" `Quick test_retry_policy;
        ] );
      ("lockfile", [ Alcotest.test_case "acquire, conflict, stale" `Quick test_lockfile ]);
      ( "server",
        [
          Alcotest.test_case "lifecycle over a unix socket" `Quick test_server_lifecycle;
          Alcotest.test_case "store warm start across restart" `Quick
            test_server_store_warm_start;
          Alcotest.test_case "duplicate requests coalesce" `Quick
            test_server_coalesces_duplicates;
          Alcotest.test_case "overload sheds explicitly" `Quick
            test_server_overload_sheds_explicitly;
        ] );
    ]
