(* Tests for wr_widen: compactability analysis and the widening /
   unrolling transforms. *)

module Ddg = Wr_ir.Ddg
module Loop = Wr_ir.Loop
module Operation = Wr_ir.Operation
module Opcode = Wr_ir.Opcode
module Dependence = Wr_ir.Dependence
module Compact = Wr_widen.Compact
module Transform = Wr_widen.Transform
module K = Wr_workload.Kernels

let count_true a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a

(* --- compactability on known kernels ------------------------------------ *)

let test_compact_daxpy_all () =
  let loop = K.daxpy () in
  let a = Compact.analyze loop.Loop.ddg in
  Alcotest.(check int) "all 5 compactable" 5 a.Compact.num_compactable

let test_compact_dot_product () =
  (* loads and multiply pack; the accumulator chain does not. *)
  let loop = K.dot_product () in
  let a = Compact.analyze loop.Loop.ddg in
  Alcotest.(check int) "3 of 4" 3 a.Compact.num_compactable;
  Alcotest.(check int) "one on cycle" 1 (count_true a.Compact.on_cycle)

let test_compact_strided_gather () =
  (* The stride-2 load cannot pack; neither can the multiply-add chain
     fed by it (producer closure), nor the store of that chain. *)
  let loop = K.strided_gather () in
  let a = Compact.analyze loop.Loop.ddg in
  let g = loop.Loop.ddg in
  Array.iter
    (fun (o : Operation.t) ->
      match o.Operation.mem with
      | Some m when m.Wr_ir.Memref.stride = 2 ->
          Alcotest.(check bool) "strided load not compactable" false
            a.Compact.compactable.(o.Operation.id)
      | _ -> ())
    (Ddg.ops g);
  Alcotest.(check bool) "some ops still compactable" true (a.Compact.num_compactable >= 1)

let test_compact_recurrence_chain () =
  (* tridiag: x(i) = z(i)*(y(i)-x(i-1)).  The whole multiply/subtract
     chain is on the cycle; the loads are compactable, the store reads
     the recurrence so it is not. *)
  let loop = K.tridiag_elimination () in
  let a = Compact.analyze loop.Loop.ddg in
  Alcotest.(check int) "loads only" 2 a.Compact.num_compactable

let test_compact_closure_through_producers () =
  (* A store fed by a non-compactable value must not pack even if it is
     itself stride-1 and off-cycle. *)
  let loop = K.linear_recurrence () in
  let a = Compact.analyze loop.Loop.ddg in
  let g = loop.Loop.ddg in
  Array.iter
    (fun (o : Operation.t) ->
      if o.Operation.opcode = Opcode.Store then
        Alcotest.(check bool) "store of recurrence not compactable" false
          a.Compact.compactable.(o.Operation.id))
    (Ddg.ops g)

let test_compact_fraction () =
  let loop = K.daxpy () in
  let a = Compact.analyze loop.Loop.ddg in
  Alcotest.(check (float 1e-9)) "fraction" 1.0 (Compact.fraction a)

(* --- widen --------------------------------------------------------------- *)

let test_widen_width1_identity () =
  let loop = K.daxpy () in
  let loop', stats = Transform.widen loop ~width:1 in
  Alcotest.(check bool) "same loop" true (loop == loop');
  Alcotest.(check int) "stats width" 1 stats.Transform.width

let test_widen_daxpy_counts () =
  let loop = K.daxpy () in
  let wide, stats = Transform.widen loop ~width:4 in
  (* Fully compactable: same op count, all wide. *)
  Alcotest.(check int) "ops unchanged" 5 (Ddg.num_ops wide.Loop.ddg);
  Alcotest.(check int) "packed" 5 stats.Transform.compactable_ops;
  Array.iter
    (fun (o : Operation.t) -> Alcotest.(check int) "4 lanes" 4 o.Operation.lanes)
    (Ddg.ops wide.Loop.ddg);
  Alcotest.(check int) "trip divided" 250 wide.Loop.trip_count

let test_widen_dot_counts () =
  let loop = K.dot_product () in
  let wide, stats = Transform.widen loop ~width:4 in
  (* 3 packed + the accumulator replicated 4x. *)
  Alcotest.(check int) "ops" 7 (Ddg.num_ops wide.Loop.ddg);
  Alcotest.(check int) "scalar copies" 4 stats.Transform.scalar_copies

let test_widen_memref_scaling () =
  let loop = K.daxpy () in
  let wide, _ = Transform.widen loop ~width:8 in
  Array.iter
    (fun (o : Operation.t) ->
      match o.Operation.mem with
      | Some m -> Alcotest.(check int) "stride widened" 8 m.Wr_ir.Memref.stride
      | None -> ())
    (Ddg.ops wide.Loop.ddg)

let test_widen_preserves_weight () =
  let loop = K.daxpy () in
  let wide, _ = Transform.widen loop ~width:2 in
  Alcotest.(check (float 1e-9)) "weight" loop.Loop.weight wide.Loop.weight

let test_widen_recurrence_copies_serialized () =
  (* The 4 copies of the accumulator must form a chain: distance-карried
     edges link them so RecMII scales with the width. *)
  let loop = K.linear_recurrence () in
  let wide, _ = Transform.widen loop ~width:4 in
  let cm = Wr_machine.Cycle_model.Cycles_4 in
  let rate_orig = Wr_sched.Mii.rec_rate ~cycle_model:cm loop.Loop.ddg in
  let rate_wide = Wr_sched.Mii.rec_rate ~cycle_model:cm wide.Loop.ddg in
  (* Per wide iteration the recurrence advances 4 source iterations. *)
  Alcotest.(check (float 0.26)) "rate x4" (4.0 *. rate_orig) rate_wide

(* --- unroll -------------------------------------------------------------- *)

let test_unroll_identity () =
  let loop = K.daxpy () in
  Alcotest.(check bool) "factor 1 identity" true (Transform.unroll loop ~factor:1 == loop)

let test_unroll_counts () =
  let loop = K.daxpy () in
  let u = Transform.unroll loop ~factor:3 in
  Alcotest.(check int) "ops x3" 15 (Ddg.num_ops u.Loop.ddg);
  Alcotest.(check int) "trip /3" 334 u.Loop.trip_count

let test_unroll_offsets () =
  let loop = K.vector_scale () in
  let u = Transform.unroll loop ~factor:2 in
  let offsets =
    Array.to_list (Ddg.ops u.Loop.ddg)
    |> List.filter_map (fun (o : Operation.t) ->
           if o.Operation.opcode = Opcode.Load then
             Option.map (fun m -> m.Wr_ir.Memref.offset) o.Operation.mem
           else None)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "copy offsets" [ 0; 1 ] offsets

let test_unroll_recurrence_distance () =
  (* A distance-1 recurrence unrolled by 4 becomes a chain whose
     wrap-around edge has distance 1 in the unrolled graph. *)
  let loop = K.linear_recurrence () in
  let u = Transform.unroll loop ~factor:4 in
  Alcotest.(check bool) "still a recurrence" true (Ddg.has_recurrence u.Loop.ddg);
  let cm = Wr_machine.Cycle_model.Cycles_4 in
  let rate = Wr_sched.Mii.rec_rate ~cycle_model:cm u.Loop.ddg in
  Alcotest.(check (float 0.01)) "rate x4 per unrolled iter" (4.0 *. 4.0) rate

(* --- property tests ------------------------------------------------------ *)

let random_loop seed =
  let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 77)) in
  Wr_workload.Generator.generate_one rng Wr_workload.Generator.default ~index:seed

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 5_000)

let widths = [| 2; 4; 8 |]

let prop_widen_valid_graphs =
  QCheck.Test.make ~name:"widened graphs pass validation" ~count:50 gen_seed (fun seed ->
      let loop = random_loop seed in
      Array.for_all
        (fun w ->
          let wide, _ = Transform.widen loop ~width:w in
          let g = wide.Loop.ddg in
          (* Revalidation happens inside Ddg.create; also check lane
             bounds. *)
          Array.for_all (fun (o : Operation.t) -> o.Operation.lanes = 1 || o.Operation.lanes = w)
            (Ddg.ops g))
        widths)

let prop_widen_op_accounting =
  QCheck.Test.make ~name:"widened op counts = packed + scalar copies" ~count:50 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      Array.for_all
        (fun w ->
          let wide, stats = Transform.widen loop ~width:w in
          Ddg.num_ops wide.Loop.ddg = stats.Transform.wide_ops
          && stats.Transform.wide_ops
             = stats.Transform.compactable_ops + stats.Transform.scalar_copies)
        widths)

let prop_widen_scalar_work_preserved =
  QCheck.Test.make ~name:"scalar work per source iteration is preserved" ~count:50 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      let scalar_work g =
        Ddg.scalar_count_class g Opcode.Bus + Ddg.scalar_count_class g Opcode.Fpu
      in
      let base = scalar_work loop.Loop.ddg in
      Array.for_all
        (fun w ->
          let wide, _ = Transform.widen loop ~width:w in
          (* A wide iteration covers w source iterations. *)
          scalar_work wide.Loop.ddg = base * w)
        widths)

let prop_widen_rec_rate_preserved =
  QCheck.Test.make ~name:"recurrence rate per source iteration survives widening" ~count:30
    gen_seed (fun seed ->
      let loop = random_loop seed in
      let cm = Wr_machine.Cycle_model.Cycles_4 in
      let base = Wr_sched.Mii.rec_rate ~cycle_model:cm loop.Loop.ddg in
      let wide, _ = Transform.widen loop ~width:4 in
      let rate = Wr_sched.Mii.rec_rate ~cycle_model:cm wide.Loop.ddg /. 4.0 in
      (* Packing can only relax padding, never beat the recurrence
         bound; rate stays within [base - eps, base + small]. *)
      rate >= base -. 1e-6 || Float.abs (rate -. base) < 0.5)

let prop_unroll_equals_widen_on_noncompactable =
  QCheck.Test.make ~name:"unroll matches widen for the scalar copies" ~count:30 gen_seed
    (fun seed ->
      let loop = random_loop seed in
      let u = Transform.unroll loop ~factor:2 in
      let wide, _ = Transform.widen loop ~width:2 in
      (* Unrolled graph has exactly 2x the ops; widened has between
         1x and 2x. *)
      Ddg.num_ops u.Loop.ddg = 2 * Ddg.num_ops loop.Loop.ddg
      && Ddg.num_ops wide.Loop.ddg <= Ddg.num_ops u.Loop.ddg
      && Ddg.num_ops wide.Loop.ddg >= Ddg.num_ops loop.Loop.ddg)

let () =
  Alcotest.run "wr_widen"
    [
      ( "compact",
        [
          Alcotest.test_case "daxpy fully compactable" `Quick test_compact_daxpy_all;
          Alcotest.test_case "dot product" `Quick test_compact_dot_product;
          Alcotest.test_case "strided gather" `Quick test_compact_strided_gather;
          Alcotest.test_case "recurrence chain" `Quick test_compact_recurrence_chain;
          Alcotest.test_case "producer closure" `Quick test_compact_closure_through_producers;
          Alcotest.test_case "fraction" `Quick test_compact_fraction;
        ] );
      ( "widen",
        [
          Alcotest.test_case "width 1 identity" `Quick test_widen_width1_identity;
          Alcotest.test_case "daxpy counts" `Quick test_widen_daxpy_counts;
          Alcotest.test_case "dot counts" `Quick test_widen_dot_counts;
          Alcotest.test_case "memref scaling" `Quick test_widen_memref_scaling;
          Alcotest.test_case "weight preserved" `Quick test_widen_preserves_weight;
          Alcotest.test_case "recurrence serialized" `Quick test_widen_recurrence_copies_serialized;
        ] );
      ( "unroll",
        [
          Alcotest.test_case "identity" `Quick test_unroll_identity;
          Alcotest.test_case "counts" `Quick test_unroll_counts;
          Alcotest.test_case "offsets" `Quick test_unroll_offsets;
          Alcotest.test_case "recurrence distance" `Quick test_unroll_recurrence_distance;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_widen_valid_graphs;
            prop_widen_op_accounting;
            prop_widen_scalar_work_preserved;
            prop_widen_rec_rate_preserved;
            prop_unroll_equals_widen_on_noncompactable;
          ] );
    ]
