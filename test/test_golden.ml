(* Golden-file tests: the figure CSVs regenerate bit-identically.

   The files under golden/ were produced by the bench harness
   ([bench/main.exe fig2|fig3|fig9 -s 120 --csv ...]) on the seed
   implementation; the studies here rebuild the same CSV strings
   through {!Core.Csv_export} — the builders the harness itself uses —
   on the same deterministic 120-loop sample.  Any change to the
   scheduler, allocator, cost model or CSV format that perturbs a
   single byte of the figures fails these tests. *)

let loops = lazy (Wr_workload.Suite.sample 120)

let suite_id = "sample120"

let read_file path = In_channel.with_open_text path In_channel.input_all

let check_golden name actual =
  let expected = read_file (Filename.concat "golden" (name ^ ".csv")) in
  Alcotest.(check string) (name ^ ".csv bit-identical") expected actual

let test_fig2 () =
  let t = Core.Peak_study.run (Lazy.force loops) in
  check_golden "fig2"
    (Core.Csv_export.to_string ~header:Core.Csv_export.fig2_header
       (Core.Csv_export.fig2_rows t))

let test_fig3 () =
  let t = Core.Spill_study.run ~suite_id (Lazy.force loops) in
  check_golden "fig3"
    (Core.Csv_export.to_string ~header:Core.Csv_export.fig3_header
       (Core.Csv_export.fig3_rows t))

let test_fig9 () =
  let t = Core.Tradeoff.figure9 ~suite_id (Lazy.force loops) in
  check_golden "fig9"
    (Core.Csv_export.to_string ~header:Core.Csv_export.fig9_header
       (Core.Csv_export.fig9_rows t))

(* Per-family splits: the synthetic family is the sampled suite itself
   (and shares its evaluation cache), "real" is the hand-written kernel
   family.  Sample kept at 120 to match the harness smoke run. *)
let families = lazy (Wr_workload.Suite.families_for ~sample:(Some 120))

let test_fig3_families () =
  let fams = Core.Spill_study.run_families ~suite_id (Lazy.force families) in
  check_golden "fig3_families"
    (Core.Csv_export.to_string ~header:Core.Csv_export.fig3_families_header
       (Core.Csv_export.fig3_families_rows fams))

let test_fig9_families () =
  let fams = Core.Tradeoff.figure9_families ~suite_id (Lazy.force families) in
  check_golden "fig9_families"
    (Core.Csv_export.to_string ~header:Core.Csv_export.fig9_families_header
       (Core.Csv_export.fig9_families_rows fams))

let () =
  Alcotest.run "golden"
    [
      ( "figures",
        [
          Alcotest.test_case "fig2" `Slow test_fig2;
          Alcotest.test_case "fig3" `Slow test_fig3;
          Alcotest.test_case "fig9" `Slow test_fig9;
          Alcotest.test_case "fig3 families" `Slow test_fig3_families;
          Alcotest.test_case "fig9 families" `Slow test_fig9_families;
        ] );
    ]
