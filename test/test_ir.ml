(* Tests for wr_ir: opcodes, memory references, operations, dependence
   graphs, SCCs and the builder DSL. *)

module Opcode = Wr_ir.Opcode
module Memref = Wr_ir.Memref
module Operation = Wr_ir.Operation
module Dependence = Wr_ir.Dependence
module Ddg = Wr_ir.Ddg
module Scc = Wr_ir.Scc
module Loop = Wr_ir.Loop
module B = Wr_ir.Builder

(* --- opcodes ----------------------------------------------------------- *)

let test_opcode_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check (option string))
        "of_string . to_string" (Some (Opcode.to_string op))
        (Option.map Opcode.to_string (Opcode.of_string (Opcode.to_string op))))
    Opcode.all;
  Alcotest.(check bool) "unknown rejected" true (Opcode.of_string "bogus" = None)

let test_opcode_classes () =
  Alcotest.(check bool) "load is memory" true (Opcode.is_memory Opcode.Load);
  Alcotest.(check bool) "store is memory" true (Opcode.is_memory Opcode.Store);
  Alcotest.(check bool) "fadd is not memory" false (Opcode.is_memory Opcode.Fadd);
  Alcotest.(check bool) "div unpipelined" false (Opcode.is_pipelined Opcode.Fdiv);
  Alcotest.(check bool) "sqrt unpipelined" false (Opcode.is_pipelined Opcode.Fsqrt);
  Alcotest.(check bool) "mul pipelined" true (Opcode.is_pipelined Opcode.Fmul)

let test_opcode_arity () =
  Alcotest.(check int) "load arity" 0 (Opcode.num_inputs Opcode.Load);
  Alcotest.(check int) "store arity" 1 (Opcode.num_inputs Opcode.Store);
  Alcotest.(check int) "fadd arity" 2 (Opcode.num_inputs Opcode.Fadd);
  Alcotest.(check bool) "store has no result" false (Opcode.has_result Opcode.Store);
  Alcotest.(check bool) "load has result" true (Opcode.has_result Opcode.Load)

(* --- memory references -------------------------------------------------- *)

let test_memref_conflict_same_stride () =
  let a = Memref.make ~array_id:0 ~stride:1 ~offset:0 in
  let b = Memref.make ~array_id:0 ~stride:1 ~offset:(-2) in
  (* a at i touches word i; b at i+2 touches word i.  So conflict a->b
     at distance 2, and no constant-distance conflict b->a. *)
  Alcotest.(check bool) "forward distance 2" true (Memref.conflict a b = Memref.At_distance 2);
  Alcotest.(check bool) "reverse none" true (Memref.conflict b a = Memref.No_conflict)

let test_memref_conflict_zero_distance () =
  let a = Memref.make ~array_id:3 ~stride:2 ~offset:4 in
  Alcotest.(check bool) "same ref distance 0" true (Memref.conflict a a = Memref.At_distance 0)

let test_memref_no_conflict_different_arrays () =
  let a = Memref.make ~array_id:0 ~stride:1 ~offset:0 in
  let b = Memref.make ~array_id:1 ~stride:1 ~offset:0 in
  Alcotest.(check bool) "different arrays" true (Memref.conflict a b = Memref.No_conflict)

let test_memref_no_conflict_non_divisible () =
  let a = Memref.make ~array_id:0 ~stride:2 ~offset:0 in
  let b = Memref.make ~array_id:0 ~stride:2 ~offset:1 in
  (* Even vs odd words: never meet. *)
  Alcotest.(check bool) "parity disjoint" true (Memref.conflict a b = Memref.No_conflict)

let test_memref_unknown_different_strides () =
  let a = Memref.make ~array_id:0 ~stride:2 ~offset:0 in
  let b = Memref.make ~array_id:0 ~stride:3 ~offset:1 in
  Alcotest.(check bool) "different strides unknown" true (Memref.conflict a b = Memref.Unknown)

let test_memref_stride0 () =
  let a = Memref.make ~array_id:0 ~stride:0 ~offset:5 in
  let b = Memref.make ~array_id:0 ~stride:0 ~offset:5 in
  let c = Memref.make ~array_id:0 ~stride:0 ~offset:6 in
  Alcotest.(check bool) "same scalar conflicts" true (Memref.conflict a b = Memref.At_distance 0);
  Alcotest.(check bool) "distinct scalars do not" true (Memref.conflict a c = Memref.No_conflict)

let test_memref_consecutive () =
  let a = Memref.make ~array_id:0 ~stride:1 ~offset:0 in
  let b = Memref.make ~array_id:0 ~stride:1 ~offset:1 in
  Alcotest.(check bool) "consecutive" true (Memref.consecutive a b);
  Alcotest.(check bool) "not the other way" false (Memref.consecutive b a)

(* --- operations --------------------------------------------------------- *)

let test_operation_validation () =
  let mem = Memref.make ~array_id:0 ~stride:1 ~offset:0 in
  Alcotest.(check bool) "valid load" true
    (let o = Operation.make ~id:0 ~opcode:Opcode.Load ~def:0 ~mem () in
     o.Operation.id = 0);
  Alcotest.(check bool) "arity enforced" true
    (try
       ignore (Operation.make ~id:0 ~opcode:Opcode.Fadd ~def:0 ~uses:[ 1 ] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "store must not define" true
    (try
       ignore (Operation.make ~id:0 ~opcode:Opcode.Store ~def:0 ~uses:[ 1 ] ~mem ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "load needs memref" true
    (try
       ignore (Operation.make ~id:0 ~opcode:Opcode.Load ~def:0 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wide op arity relaxed" true
    (let o = Operation.make ~id:0 ~opcode:Opcode.Fadd ~def:0 ~uses:[ 1; 2; 3; 4 ] ~lanes:2 () in
     Operation.is_wide o)

(* --- SCC ---------------------------------------------------------------- *)

let test_scc_chain () =
  (* 0 -> 1 -> 2: three singleton components in reverse topo order. *)
  let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [] in
  let r = Scc.compute ~n:3 ~succs in
  Alcotest.(check int) "three components" 3 r.Scc.count;
  Alcotest.(check bool) "edge order respected" true
    (r.Scc.component.(0) > r.Scc.component.(1) && r.Scc.component.(1) > r.Scc.component.(2))

let test_scc_cycle () =
  (* 0 <-> 1, 2 alone. *)
  let succs = function 0 -> [ 1 ] | 1 -> [ 0; 2 ] | _ -> [] in
  let r = Scc.compute ~n:3 ~succs in
  Alcotest.(check int) "two components" 2 r.Scc.count;
  Alcotest.(check int) "0 and 1 together" r.Scc.component.(0) r.Scc.component.(1);
  Alcotest.(check bool) "2 separate" true (r.Scc.component.(2) <> r.Scc.component.(0))

let test_scc_large_path_no_overflow () =
  (* The iterative implementation must survive deep graphs. *)
  let n = 200_000 in
  let succs v = if v + 1 < n then [ v + 1 ] else [] in
  let r = Scc.compute ~n ~succs in
  Alcotest.(check int) "all singletons" n r.Scc.count

let test_scc_members () =
  let succs = function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  let r = Scc.compute ~n:3 ~succs in
  let members = Scc.members r in
  let cyc = r.Scc.component.(0) in
  Alcotest.(check (list int)) "cycle members" [ 0; 1 ] (List.sort compare members.(cyc))

(* --- DDG validation ----------------------------------------------------- *)

let simple_ops () =
  let mem = Memref.make ~array_id:0 ~stride:1 ~offset:0 in
  [|
    Operation.make ~id:0 ~opcode:Opcode.Load ~def:0 ~mem ();
    Operation.make ~id:1 ~opcode:Opcode.Fneg ~def:1 ~uses:[ 0 ] ();
  |]

let test_ddg_rejects_zero_cycle () =
  let ops = simple_ops () in
  let edges =
    [
      Dependence.make ~src:0 ~dst:1 ~kind:Dependence.Flow ~distance:0;
      Dependence.make ~src:1 ~dst:0 ~kind:Dependence.Memory ~distance:0;
    ]
  in
  Alcotest.(check bool) "zero cycle rejected" true
    (try
       ignore (Ddg.create ~num_vregs:2 ~ops ~edges);
       false
     with Invalid_argument _ -> true)

let test_ddg_accepts_carried_cycle () =
  let ops = simple_ops () in
  let edges =
    [
      Dependence.make ~src:0 ~dst:1 ~kind:Dependence.Flow ~distance:0;
      Dependence.make ~src:1 ~dst:0 ~kind:Dependence.Memory ~distance:1;
    ]
  in
  let g = Ddg.create ~num_vregs:2 ~ops ~edges in
  Alcotest.(check bool) "has recurrence" true (Ddg.has_recurrence g);
  let flags = Ddg.recurrence_ops g in
  Alcotest.(check bool) "both flagged" true (flags.(0) && flags.(1))

let test_ddg_rejects_bad_flow_edge () =
  let ops = simple_ops () in
  (* Flow edge in the wrong direction: op1's def is not used by op0. *)
  let edges = [ Dependence.make ~src:1 ~dst:0 ~kind:Dependence.Flow ~distance:1 ] in
  Alcotest.(check bool) "bad flow rejected" true
    (try
       ignore (Ddg.create ~num_vregs:2 ~ops ~edges);
       false
     with Invalid_argument _ -> true)

let test_ddg_rejects_double_def () =
  let mem = Memref.make ~array_id:0 ~stride:1 ~offset:0 in
  let ops =
    [|
      Operation.make ~id:0 ~opcode:Opcode.Load ~def:0 ~mem ();
      Operation.make ~id:1 ~opcode:Opcode.Load ~def:0 ~mem ();
    |]
  in
  Alcotest.(check bool) "double def rejected" true
    (try
       ignore (Ddg.create ~num_vregs:1 ~ops ~edges:[]);
       false
     with Invalid_argument _ -> true)

let test_ddg_def_users () =
  let ops = simple_ops () in
  let edges = [ Dependence.make ~src:0 ~dst:1 ~kind:Dependence.Flow ~distance:0 ] in
  let g = Ddg.create ~num_vregs:2 ~ops ~edges in
  Alcotest.(check (option int)) "def site" (Some 0) (Ddg.def_site g 0);
  Alcotest.(check (list int)) "users" [ 1 ] (Ddg.users g 0);
  Alcotest.(check int) "bus ops" 1 (Ddg.count_class g Opcode.Bus);
  Alcotest.(check int) "fpu ops" 1 (Ddg.count_class g Opcode.Fpu)

let test_ddg_operands () =
  let ops = simple_ops () in
  let edges = [ Dependence.make ~src:0 ~dst:1 ~kind:Dependence.Flow ~distance:3 ] in
  let g = Ddg.create ~num_vregs:2 ~ops ~edges in
  match Ddg.operands g 1 with
  | [ o ] ->
      Alcotest.(check int) "reg" 0 o.Ddg.reg;
      Alcotest.(check int) "distance recovered" 3 o.Ddg.distance;
      Alcotest.(check (option int)) "producer" (Some 0) o.Ddg.producer
  | _ -> Alcotest.fail "expected one operand"

(* --- builder ------------------------------------------------------------ *)

let test_builder_daxpy_shape () =
  let b = B.create ~name:"daxpy" () in
  let a = B.live_in b in
  let x = B.load b ~array_id:0 () in
  let y = B.load b ~array_id:1 () in
  let axy = B.fadd b (B.fmul b a x) y in
  B.store b ~array_id:1 () axy;
  let loop = B.finish b ~trip_count:100 () in
  let g = loop.Loop.ddg in
  Alcotest.(check int) "5 ops" 5 (Ddg.num_ops g);
  Alcotest.(check bool) "no recurrence" false (Ddg.has_recurrence g);
  (* load A1 and store A1 conflict at distance 0: one memory edge. *)
  let mem_edges =
    List.filter (fun (e : Dependence.t) -> e.Dependence.kind = Dependence.Memory) (Ddg.edges g)
  in
  Alcotest.(check int) "one memory edge" 1 (List.length mem_edges)

let test_builder_feedback_recurrence () =
  let b = B.create () in
  let x = B.load b ~array_id:0 () in
  let s = B.feedback b ~distance:1 ~f:(fun prev -> B.fadd b prev x) in
  B.store b ~array_id:1 () s;
  let loop = B.finish b ~trip_count:10 () in
  Alcotest.(check bool) "recurrence detected" true (Ddg.has_recurrence loop.Loop.ddg);
  (* The recurrence is the fadd alone. *)
  let flags = Ddg.recurrence_ops loop.Loop.ddg in
  let count = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 flags in
  Alcotest.(check int) "one recurrence op" 1 count

let test_builder_feedback_distance2 () =
  let b = B.create () in
  let x = B.load b ~array_id:0 () in
  let s = B.feedback b ~distance:2 ~f:(fun prev -> B.fadd b prev x) in
  B.store b ~array_id:1 () s;
  let loop = B.finish b ~trip_count:10 () in
  let carried =
    List.find
      (fun (e : Dependence.t) -> e.Dependence.kind = Dependence.Flow && e.Dependence.distance > 0)
      (Ddg.edges loop.Loop.ddg)
  in
  Alcotest.(check int) "distance 2" 2 carried.Dependence.distance

let test_builder_feedback_rejects_live_in () =
  let b = B.create () in
  let inv = B.live_in b in
  Alcotest.(check bool) "live-in result rejected" true
    (try
       ignore (B.feedback b ~distance:1 ~f:(fun _prev -> inv));
       false
     with Invalid_argument _ -> true)

let test_builder_carried_use () =
  (* b(i) = a(i) - a-value from 2 iterations ago, via explicit carried. *)
  let b = B.create () in
  let x = B.load b ~array_id:0 () in
  let d = B.fsub b x (B.carried x ~distance:2) in
  B.store b ~array_id:1 () d;
  let loop = B.finish b ~trip_count:10 () in
  let g = loop.Loop.ddg in
  let carried_edges =
    List.filter
      (fun (e : Dependence.t) -> e.Dependence.kind = Dependence.Flow && e.Dependence.distance = 2)
      (Ddg.edges g)
  in
  Alcotest.(check int) "one carried flow edge" 1 (List.length carried_edges);
  Alcotest.(check bool) "not a recurrence" false (Ddg.has_recurrence g)

let test_builder_store_load_carried_memory () =
  (* store A[i]; load A[i-1] next iteration => memory flow at distance 1
     => recurrence via load -> ... -> store chain. *)
  let b = B.create () in
  let x = B.load b ~array_id:0 ~offset:(-1) () in
  let y = B.fneg b x in
  B.store b ~array_id:0 () y;
  let loop = B.finish b ~trip_count:10 () in
  Alcotest.(check bool) "memory recurrence" true (Ddg.has_recurrence loop.Loop.ddg)

let test_builder_live_in_not_defined () =
  let b = B.create () in
  let a = B.live_in b in
  let x = B.load b ~array_id:0 () in
  B.store b ~array_id:1 () (B.fmul b a x);
  let loop = B.finish b ~trip_count:10 () in
  let g = loop.Loop.ddg in
  (* Exactly one vreg (the invariant) has no def site. *)
  let undef = ref 0 in
  for r = 0 to Ddg.num_vregs g - 1 do
    if Ddg.def_site g r = None then incr undef
  done;
  Alcotest.(check int) "one live-in" 1 !undef

let test_loop_validation () =
  let b = B.create () in
  let x = B.load b ~array_id:0 () in
  B.store b ~array_id:1 () x;
  let loop = B.finish b ~trip_count:10 () in
  Alcotest.(check bool) "trip positive required" true
    (try
       ignore (Loop.make ~name:"bad" ~ddg:loop.Loop.ddg ~trip_count:0 ());
       false
     with Invalid_argument _ -> true)

(* --- dot export --------------------------------------------------------- *)

let test_dot_export () =
  let b = B.create ~name:"dot" () in
  let x = B.load b ~array_id:0 () in
  B.store b ~array_id:1 () x;
  let loop = B.finish b ~trip_count:10 () in
  let s = Wr_ir.Dot.of_loop loop in
  Alcotest.(check bool) "digraph" true (String.length s > 20 && String.sub s 0 7 = "digraph")

(* --- text format ---------------------------------------------------------- *)

let test_text_parse_daxpy () =
  let src =
    "loop daxpy trip 100 weight 2.0\n\
     \ta = livein\n\
     \tx = load A0[i]\n\
     \ty = load A1[i]\n\
     \tt = fmul a x\n\
     \tr = fadd t y\n\
     \tstore A1[i] r\n\
     end\n"
  in
  (* Tabs are not separators in our tokenizer; use spaces. *)
  let src = String.map (fun c -> if c = '\t' then ' ' else c) src in
  match Wr_ir.Text_format.parse_one src with
  | Error e -> Alcotest.fail e
  | Ok loop ->
      Alcotest.(check int) "ops" 5 (Ddg.num_ops loop.Loop.ddg);
      Alcotest.(check int) "trip" 100 loop.Loop.trip_count;
      Alcotest.(check (float 1e-9)) "weight" 2.0 loop.Loop.weight;
      Alcotest.(check bool) "no recurrence" false (Ddg.has_recurrence loop.Loop.ddg)

let test_text_parse_recurrence () =
  let src =
    "loop acc\n  x = load A0[i]\n  s = fadd s@1 x\n  store A1[i] s\nend\n"
  in
  match Wr_ir.Text_format.parse_one src with
  | Error e -> Alcotest.fail e
  | Ok loop -> Alcotest.(check bool) "recurrence" true (Ddg.has_recurrence loop.Loop.ddg)

let test_text_parse_cross_statement_recurrence () =
  (* tridiagonal: x = z * (y - x(i-1)) spans two statements. *)
  let src =
    "loop tri\n\
     \  y = load A0[i]\n\
     \  z = load A1[i]\n\
     \  t = fsub y x@1\n\
     \  x = fmul z t\n\
     \  store A2[i] x\n\
     end\n"
  in
  match Wr_ir.Text_format.parse_one src with
  | Error e -> Alcotest.fail e
  | Ok loop ->
      Alcotest.(check bool) "recurrence" true (Ddg.has_recurrence loop.Loop.ddg);
      (* Must be semantically identical to the kernel library's. *)
      let reference = Wr_workload.Kernels.tridiag_elimination () in
      let a = Wr_vliw.Interp.run ~iterations:12 reference in
      let b = Wr_vliw.Interp.run ~iterations:12 loop in
      Alcotest.(check bool) "same semantics as kernel" true (Wr_vliw.Interp.equal_memory a b)

let test_text_memref_forms () =
  let src =
    "loop refs\n\
     \  a = load A0[i]\n\
     \  b = load A1[2i]\n\
     \  c = load A2[i+4]\n\
     \  d = load A3[-1i+8]\n\
     \  e = load A4[7]\n\
     \  t1 = fadd a b\n\
     \  t2 = fadd c d\n\
     \  t3 = fadd t1 t2\n\
     \  t4 = fadd t3 e\n\
     \  store A5[i] t4\n\
     end\n"
  in
  match Wr_ir.Text_format.parse_one src with
  | Error e -> Alcotest.fail e
  | Ok loop ->
      let mem_of id = Option.get (Ddg.op loop.Loop.ddg id).Operation.mem in
      Alcotest.(check int) "stride 2" 2 (mem_of 1).Wr_ir.Memref.stride;
      Alcotest.(check int) "offset 4" 4 (mem_of 2).Wr_ir.Memref.offset;
      Alcotest.(check int) "negative stride" (-1) (mem_of 3).Wr_ir.Memref.stride;
      Alcotest.(check int) "scalar stride" 0 (mem_of 4).Wr_ir.Memref.stride;
      Alcotest.(check int) "scalar offset" 7 (mem_of 4).Wr_ir.Memref.offset

let test_text_errors () =
  let cases =
    [
      ("use before def", "loop l\n  y = fneg x\n  x = load A0[i]\n  store A1[i] y\nend\n");
      ("unknown name", "loop l\n  store A1[i] nosuch\nend\n");
      ("duplicate def", "loop l\n  x = load A0[i]\n  x = load A1[i]\n  store A2[i] x\nend\n");
      ("missing end", "loop l\n  x = load A0[i]\n");
      ("bad arity", "loop l\n  x = load A0[i]\n  y = fadd x\n  store A1[i] y\nend\n");
      ("bad memref", "loop l\n  x = load B0[i]\n  store A1[i] x\nend\n");
    ]
  in
  List.iter
    (fun (label, src) ->
      match Wr_ir.Text_format.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (label ^ ": expected a parse error"))
    cases;
  (* A cross-statement cycle whose only carried edge is the forward
     reference is legal (distance 1) — the format cannot express a
     zero-distance cycle at all, since forward uses require @d >= 1. *)
  match
    Wr_ir.Text_format.parse "loop l\n  a = fneg b@1\n  b = fneg a\n  store A0[i] b\nend\n"
  with
  | Ok [ l ] ->
      Alcotest.(check bool) "carried cycle accepted" true (Ddg.has_recurrence l.Loop.ddg)
  | Ok _ -> Alcotest.fail "expected one loop"
  | Error e -> Alcotest.fail e

let test_text_multiple_loops () =
  let src =
    "loop a trip 10\n  x = load A0[i]\n  store A1[i] x\nend\n\n\
     loop b trip 20\n  y = load A0[i]\n  store A2[i] y\nend\n"
  in
  match Wr_ir.Text_format.parse src with
  | Ok [ la; lb ] ->
      Alcotest.(check int) "trip a" 10 la.Loop.trip_count;
      Alcotest.(check int) "trip b" 20 lb.Loop.trip_count
  | Ok _ -> Alcotest.fail "expected two loops"
  | Error e -> Alcotest.fail e

let test_text_roundtrip_kernels () =
  List.iter
    (fun (name, loop) ->
      Alcotest.(check bool) (name ^ " roundtrips") true
        (Wr_ir.Text_format.roundtrip_normalizes loop))
    (Wr_workload.Kernels.all ())

let test_text_roundtrip_semantics () =
  (* Parsing the printed form must preserve execution semantics, not
     just the shape. *)
  List.iter
    (fun (name, loop) ->
      match Wr_ir.Text_format.parse_one (Wr_ir.Text_format.print loop) with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok l2 ->
          let a = Wr_vliw.Interp.run ~iterations:9 loop in
          let b = Wr_vliw.Interp.run ~iterations:9 l2 in
          Alcotest.(check bool) (name ^ " semantics") true (Wr_vliw.Interp.equal_memory a b))
    (Wr_workload.Kernels.all ())

(* --- qcheck: builder-produced graphs are always valid ------------------- *)

let arbitrary_loop =
  (* A tiny random program: a few statements over a few arrays. *)
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "loop(seed=%d)" seed)
    QCheck.Gen.(int_bound 10_000)

let random_loop seed =
  let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 1)) in
  Wr_workload.Generator.generate_one rng Wr_workload.Generator.default ~index:seed

let prop_generated_loops_valid =
  QCheck.Test.make ~name:"generated loops pass Ddg validation" ~count:60 arbitrary_loop
    (fun seed ->
      let loop = random_loop seed in
      (* Ddg.create already validated; recreate explicitly to be sure. *)
      let g = loop.Loop.ddg in
      let g2 = Ddg.create ~num_vregs:(Ddg.num_vregs g) ~ops:(Ddg.ops g) ~edges:(Ddg.edges g) in
      Ddg.num_ops g2 = Ddg.num_ops g)

let prop_operands_match_uses =
  QCheck.Test.make ~name:"operand descriptors align with uses" ~count:60 arbitrary_loop
    (fun seed ->
      let loop = random_loop seed in
      let g = loop.Loop.ddg in
      let ok = ref true in
      for v = 0 to Ddg.num_ops g - 1 do
        let operands = Ddg.operands g v in
        let uses = (Ddg.op g v).Operation.uses in
        if List.map (fun (o : Ddg.operand) -> o.Ddg.reg) operands <> uses then ok := false
      done;
      !ok)

(* Adversarial graphs: random op arrays and random edges, not via the
   builder.  Ddg.create must either reject them with Invalid_argument
   or produce a graph every downstream pass can handle — never crash
   with anything else. *)
let prop_memref_conflict_sound =
  (* If the analysis reports a constant distance, the addresses really
     do coincide at that distance, for every iteration. *)
  QCheck.Test.make ~name:"memref conflict distances are sound" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 42)) in
      let mk () =
        Memref.make
          ~array_id:(Wr_util.Rng.int rng 2)
          ~stride:(Wr_util.Rng.int_in rng (-3) 3)
          ~offset:(Wr_util.Rng.int_in rng (-5) 5)
      in
      let a = mk () and b = mk () in
      match Memref.conflict a b with
      | Memref.At_distance d ->
          List.for_all
            (fun i ->
              Memref.address_at a ~iteration:i = Memref.address_at b ~iteration:(i + d))
            [ 0; 1; 5; 17 ]
      | Memref.No_conflict ->
          (* Equal strides and arrays: verify there really is no
             non-negative distance (sampled). *)
          if a.Memref.array_id = b.Memref.array_id && a.Memref.stride = b.Memref.stride then
            List.for_all
              (fun d ->
                List.for_all
                  (fun i ->
                    Memref.address_at a ~iteration:i
                    <> Memref.address_at b ~iteration:(i + d))
                  [ 0; 3 ])
              [ 0; 1; 2; 3; 4 ]
          else true
      | Memref.Unknown -> a.Memref.stride <> b.Memref.stride)

let prop_adversarial_graphs_total =
  QCheck.Test.make ~name:"Ddg.create is total on adversarial inputs" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Wr_util.Rng.create ~seed:(Int64.of_int (seed + 555)) in
      let n = 1 + Wr_util.Rng.int rng 12 in
      let num_vregs = 1 + Wr_util.Rng.int rng 16 in
      let mem () =
        Memref.make
          ~array_id:(Wr_util.Rng.int rng 3)
          ~stride:(Wr_util.Rng.int_in rng (-2) 3)
          ~offset:(Wr_util.Rng.int_in rng (-4) 4)
      in
      let random_op id =
        match Wr_util.Rng.int rng 4 with
        | 0 -> Operation.make ~id ~opcode:Opcode.Load ~def:(Wr_util.Rng.int rng num_vregs) ~mem:(mem ()) ()
        | 1 ->
            Operation.make ~id ~opcode:Opcode.Store
              ~uses:[ Wr_util.Rng.int rng num_vregs ]
              ~mem:(mem ()) ()
        | 2 ->
            Operation.make ~id ~opcode:Opcode.Fadd ~def:(Wr_util.Rng.int rng num_vregs)
              ~uses:[ Wr_util.Rng.int rng num_vregs; Wr_util.Rng.int rng num_vregs ]
              ()
        | _ ->
            Operation.make ~id ~opcode:Opcode.Fneg ~def:(Wr_util.Rng.int rng num_vregs)
              ~uses:[ Wr_util.Rng.int rng num_vregs ]
              ()
      in
      let ops = Array.init n random_op in
      let edges =
        List.init (Wr_util.Rng.int rng (2 * n)) (fun _ ->
            let kind =
              match Wr_util.Rng.int rng 4 with
              | 0 -> Dependence.Flow
              | 1 -> Dependence.Anti
              | 2 -> Dependence.Output
              | _ -> Dependence.Memory
            in
            Dependence.make ~src:(Wr_util.Rng.int rng n) ~dst:(Wr_util.Rng.int rng n) ~kind
              ~distance:(Wr_util.Rng.int rng 3))
      in
      match Ddg.create ~num_vregs ~ops ~edges with
      | exception Invalid_argument _ -> true  (* rejected cleanly *)
      | g -> (
          (* Accepted: the scheduler must handle it. *)
          let resource =
            Wr_machine.Resource.of_config (Wr_machine.Config.xwy ~x:1 ~y:1 ())
          in
          match
            Wr_sched.Modulo.run resource ~cycle_model:Wr_machine.Cycle_model.Cycles_4 g
          with
          | r ->
              Result.is_ok
                (Wr_sched.Schedule.validate g resource r.Wr_sched.Modulo.schedule)
          | exception Invalid_argument _ -> true))

let prop_text_roundtrip_generated =
  QCheck.Test.make ~name:"generated loops roundtrip through the text format" ~count:80
    arbitrary_loop (fun seed ->
      Wr_ir.Text_format.roundtrip_normalizes (random_loop seed))

let () =
  Alcotest.run "wr_ir"
    [
      ( "opcode",
        [
          Alcotest.test_case "roundtrip" `Quick test_opcode_roundtrip;
          Alcotest.test_case "classes" `Quick test_opcode_classes;
          Alcotest.test_case "arity" `Quick test_opcode_arity;
        ] );
      ( "memref",
        [
          Alcotest.test_case "same stride conflict" `Quick test_memref_conflict_same_stride;
          Alcotest.test_case "zero distance" `Quick test_memref_conflict_zero_distance;
          Alcotest.test_case "different arrays" `Quick test_memref_no_conflict_different_arrays;
          Alcotest.test_case "parity disjoint" `Quick test_memref_no_conflict_non_divisible;
          Alcotest.test_case "unknown strides" `Quick test_memref_unknown_different_strides;
          Alcotest.test_case "stride 0" `Quick test_memref_stride0;
          Alcotest.test_case "consecutive" `Quick test_memref_consecutive;
        ] );
      ("operation", [ Alcotest.test_case "validation" `Quick test_operation_validation ]);
      ( "scc",
        [
          Alcotest.test_case "chain" `Quick test_scc_chain;
          Alcotest.test_case "cycle" `Quick test_scc_cycle;
          Alcotest.test_case "deep graph" `Quick test_scc_large_path_no_overflow;
          Alcotest.test_case "members" `Quick test_scc_members;
        ] );
      ( "ddg",
        [
          Alcotest.test_case "rejects zero cycle" `Quick test_ddg_rejects_zero_cycle;
          Alcotest.test_case "accepts carried cycle" `Quick test_ddg_accepts_carried_cycle;
          Alcotest.test_case "rejects bad flow" `Quick test_ddg_rejects_bad_flow_edge;
          Alcotest.test_case "rejects double def" `Quick test_ddg_rejects_double_def;
          Alcotest.test_case "def/users" `Quick test_ddg_def_users;
          Alcotest.test_case "operands" `Quick test_ddg_operands;
        ] );
      ( "builder",
        [
          Alcotest.test_case "daxpy shape" `Quick test_builder_daxpy_shape;
          Alcotest.test_case "feedback recurrence" `Quick test_builder_feedback_recurrence;
          Alcotest.test_case "feedback distance 2" `Quick test_builder_feedback_distance2;
          Alcotest.test_case "feedback rejects live-in" `Quick test_builder_feedback_rejects_live_in;
          Alcotest.test_case "carried use" `Quick test_builder_carried_use;
          Alcotest.test_case "memory recurrence" `Quick test_builder_store_load_carried_memory;
          Alcotest.test_case "live-in undefined" `Quick test_builder_live_in_not_defined;
          Alcotest.test_case "loop validation" `Quick test_loop_validation;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
      ( "text_format",
        [
          Alcotest.test_case "parse daxpy" `Quick test_text_parse_daxpy;
          Alcotest.test_case "parse recurrence" `Quick test_text_parse_recurrence;
          Alcotest.test_case "cross-statement recurrence" `Quick
            test_text_parse_cross_statement_recurrence;
          Alcotest.test_case "memref forms" `Quick test_text_memref_forms;
          Alcotest.test_case "errors" `Quick test_text_errors;
          Alcotest.test_case "multiple loops" `Quick test_text_multiple_loops;
          Alcotest.test_case "kernels roundtrip" `Quick test_text_roundtrip_kernels;
          Alcotest.test_case "roundtrip semantics" `Quick test_text_roundtrip_semantics;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_generated_loops_valid; prop_operands_match_uses;
            prop_text_roundtrip_generated; prop_adversarial_graphs_total;
            prop_memref_conflict_sound;
          ]
      );
    ]
