(* Benchmark harness: regenerates every table and figure of the paper
   and times the computational core of each experiment with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- all experiments, full suite
     dune exec bench/main.exe fig3            -- one experiment
     dune exec bench/main.exe all -s 200      -- subsampled suite (faster)
     dune exec bench/main.exe all --no-timing -- skip the Bechamel runs
     dune exec bench/main.exe fig3 --jobs 4   -- evaluation pool of 4 domains
     dune exec bench/main.exe parspeed        -- sequential-vs-parallel wall time
     dune exec bench/main.exe all --json BENCH.json   -- machine-readable timings *)

open Bechamel
open Toolkit

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module B = Core.Bench_schema

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

let experiments =
  [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "fig2"; "fig3"; "fig4";
    "fig6"; "fig7"; "fig8"; "fig9"; "conclusion"; "ablation-compact"; "ablation-levers";
    "ablation-rotating"; "ablation-ordering"; "icache"; "traffic"; "dcache"; "balance";
    "endtoend"; "gap"; "parspeed"; "schedmicro"; "interpmicro"; "fuzz"; "profile" ]

(* Exit codes (documented in the README): 0 success, 1 usage error,
   2 runtime failure (mismatch, oracle violation, uncaught exception —
   the OCaml runtime itself exits 2 on the latter), 3 completed with
   quarantined (degraded) points. *)
let usage () =
  Printf.eprintf
    "usage: main.exe [all|%s] [-s N] [--no-timing] [--csv DIR] [--jobs N] [--json FILE] \
     [--verify] [--strict] [--journal FILE] [--store DIR] [--loop-budget-ms N] [--cases N] [--fuzz-seed N] \
     [--trace FILE] [--metrics FILE] [--backend heuristic|exact|portfolio] [--backend-diff] \
     [--ledger FILE] [--ledger-wall]\n\
     \       main.exe report LEDGER\n\
     \       main.exe diff OLD NEW [--threshold PCT]\n\
     \       main.exe validate BENCH.json...\n"
    (String.concat "|" experiments);
  exit 1

(* ------------------------------------------------------------------ *)
(* Ledger and schema tool modes: positional file arguments, handled
   before the experiment CLI.  [report] renders one run's ledger as a
   dashboard; [diff] joins two ledgers (or two BENCH_*.json artifacts
   of the same kind) and exits 2 iff a regression-class divergence
   survives the threshold; [validate] checks BENCH artifacts against
   the wr-bench/%s envelope. *)

let diff_threshold rest =
  (* WR_DIFF_THRESHOLD sets the default; an explicit --threshold wins.
     Both are percentages, and malformed values warn once and fall
     back rather than silently gating on 0. *)
  let default = Wr_util.Env.float ~min:0.0 ~default:0.0 "WR_DIFF_THRESHOLD" in
  match rest with
  | [] -> default
  | [ "--threshold"; v ] -> (
      match float_of_string_opt (String.trim v) with
      | Some t when t >= 0.0 -> t
      | _ ->
          Wr_util.Env.warn_invalid ~name:"--threshold" ~value:v
            ~expected:"a non-negative percentage"
            ~default:(Printf.sprintf "%g" default);
          default)
  | _ -> usage ()

let load_any path =
  (* Ledgers and bench artifacts are both strict JSON; dispatch on
     which loader accepts the file. *)
  match Core.Provenance.load path with
  | Ok records -> `Ledger records
  | Error ledger_err -> (
      match Core.Bench_schema.load_file path with
      | Ok j -> `Bench j
      | Error bench_err ->
          Printf.eprintf "%s: neither a ledger (%s) nor a bench artifact (%s)\n" path
            ledger_err bench_err;
          exit 2)

let () =
  match Array.to_list Sys.argv with
  | _ :: "report" :: [ path ] -> (
      match Core.Provenance.load path with
      | Ok records ->
          print_string (Core.Observatory.report records);
          exit 0
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2)
  | _ :: "report" :: _ -> usage ()
  | _ :: "diff" :: old_path :: new_path :: rest ->
      let threshold_pct = diff_threshold rest in
      let ds =
        match (load_any old_path, load_any new_path) with
        | `Ledger o, `Ledger n -> Core.Observatory.diff ~threshold_pct o n
        | `Bench o, `Bench n -> (
            match Core.Observatory.diff_bench ~threshold_pct o n with
            | Ok ds -> ds
            | Error msg ->
                Printf.eprintf "diff: %s\n" msg;
                exit 2)
        | _ ->
            Printf.eprintf "diff: %s and %s are not artifacts of the same kind\n" old_path
              new_path;
            exit 2
      in
      print_string (Core.Observatory.render_diff ds);
      exit (if Core.Observatory.has_regressions ds then 2 else 0)
  | _ :: "diff" :: _ -> usage ()
  | _ :: "validate" :: (_ :: _ as paths) ->
      let failed = ref false in
      List.iter
        (fun path ->
          match Result.bind (Core.Bench_schema.load_file path) Core.Bench_schema.validate with
          | Ok kind -> Printf.printf "%s: ok (%s, kind %s)\n" path Core.Bench_schema.version kind
          | Error msg ->
              failed := true;
              Printf.printf "%s: INVALID — %s\n" path msg)
        paths;
      exit (if !failed then 2 else 0)
  | _ :: [ "validate" ] -> usage ()
  | _ -> ()

let ( selected,
      sample_size,
      with_timing,
      csv_dir,
      jobs_flag,
      json_path,
      verify_flag,
      strict_flag,
      journal_path,
      store_dir,
      loop_budget_ms,
      fuzz_cases,
      fuzz_seed,
      trace_path,
      metrics_path,
      backend_flag,
      backend_diff,
      ledger_path,
      ledger_wall ) =
  let selected = ref "all" and sample = ref None and timing = ref true in
  let csv = ref None and jobs = ref None and json = ref None in
  let verify = ref false and cases = ref 200 and seed = ref 0x5EEDL in
  let strict = ref false and journal = ref None and budget = ref None in
  let store = ref None in
  let trace = ref None and metrics = ref None in
  let backend = ref None and diff = ref false in
  let ledger = ref None and lwall = ref false in
  let rec parse = function
    | [] -> ()
    | "-s" :: n :: rest ->
        (match int_of_string_opt n with Some v -> sample := Some v | None -> usage ());
        parse rest
    | "--no-timing" :: rest ->
        timing := false;
        parse rest
    | "--verify" :: rest ->
        verify := true;
        parse rest
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--journal" :: path :: rest ->
        journal := Some path;
        parse rest
    | "--store" :: dir :: rest ->
        store := Some dir;
        parse rest
    | "--loop-budget-ms" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 1 -> budget := Some v
        | _ -> usage ());
        parse rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse rest
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        parse rest
    | "--cases" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 1 -> cases := v
        | _ -> usage ());
        parse rest
    | "--fuzz-seed" :: n :: rest ->
        (match Int64.of_string_opt n with Some v -> seed := v | None -> usage ());
        parse rest
    | "--csv" :: dir :: rest ->
        csv := Some dir;
        parse rest
    | "--jobs" :: n :: rest | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 1 -> jobs := Some v
        | _ -> usage ());
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--backend" :: name :: rest ->
        (match Wr_sched.Backend.of_string name with
        | Some k -> backend := Some k
        | None -> usage ());
        parse rest
    | "--backend-diff" :: rest ->
        diff := true;
        parse rest
    | "--ledger" :: path :: rest ->
        ledger := Some path;
        parse rest
    | "--ledger-wall" :: rest ->
        lwall := true;
        parse rest
    | id :: rest when id = "all" || List.mem id experiments ->
        selected := id;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  ( !selected, !sample, !timing, !csv, !jobs, !json, !verify, !strict, !journal, !store,
    !budget, !cases, !seed, !trace, !metrics, !backend, !diff, !ledger, !lwall )

let () = Option.iter Wr_util.Pool.set_default_jobs jobs_flag

let () = Option.iter Wr_sched.Backend.set backend_flag

let () = if verify_flag then Core.Evaluate.set_verify true

let () = if strict_flag then Core.Evaluate.set_strict true

(* Provenance capture turns on with --ledger; wall times stay off
   unless explicitly requested (they break ledger byte-identity). *)
let () = if ledger_path <> None then Core.Provenance.set_capture true

let () = if ledger_wall then Core.Provenance.set_wall true

let () = Core.Evaluate.set_loop_budget_ms loop_budget_ms

let () =
  Option.iter
    (fun path ->
      let replayed = Core.Evaluate.attach_journal path in
      if replayed > 0 then
        Printf.printf "[journal] resumed %d completed points from %s\n%!" replayed path)
    journal_path

(* --store falls back to WR_STORE, mirroring the CLI. *)
let store_dir =
  match store_dir with
  | Some _ as s -> s
  | None -> ( match Sys.getenv_opt "WR_STORE" with Some "" | None -> None | s -> s)

let () =
  Option.iter
    (fun dir ->
      match Core.Evaluate.attach_store dir with
      | r ->
          Printf.printf "[store] %s: %d entries in %d segment(s)%s%s\n%!" dir
            r.Core.Store.entries r.Core.Store.segments
            (if r.Core.Store.quarantined_segments > 0 then
               Printf.sprintf ", %d quarantined" r.Core.Store.quarantined_segments
             else "")
            (if r.Core.Store.truncated_bytes > 0 then
               Printf.sprintf ", %d torn byte(s) truncated" r.Core.Store.truncated_bytes
             else "")
      | exception Core.Store.Locked msg ->
          prerr_endline msg;
          exit 2)
    store_dir

(* Telemetry turns on before any experiment runs: either output flag
   requests it, and the profile mode needs it regardless. *)
let () =
  if trace_path <> None || metrics_path <> None || selected = "profile" then
    Wr_obs.Obs.set_enabled true

let effective_jobs () =
  match jobs_flag with Some j -> j | None -> Wr_util.Pool.default_jobs ()

(* --json collects per-experiment wall times and Bechamel estimates so
   the perf trajectory can be tracked across commits (BENCH_*.json). *)
let wall_times : (string * float) list ref = ref []

(* Failures detected mid-run (simulation mismatches, fuzz oracle
   violations, determinism breaks) defer the exit-2 to process end so
   the run's trace, metrics, and ledger still get written first. *)
let deferred_failures : string list ref = ref []

let defer_failure msg = deferred_failures := msg :: !deferred_failures

let bechamel_estimates : (string * float) list ref = ref []

let record_wall id seconds = wall_times := (id, seconds) :: !wall_times

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~suite_id ~loops =
  let entries fmt l =
    String.concat ",\n"
      (List.rev_map (fun (name, v) -> Printf.sprintf fmt (json_escape name) v) l)
  in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc
        "{\n  \"suite\": \"%s\",\n  \"loops\": %d,\n  \"jobs\": %d,\n  \"experiments\": [\n%s\n  ],\n\
        \  \"bechamel\": [\n%s\n  ]\n}\n"
        (json_escape suite_id) (Array.length loops) (effective_jobs ())
        (entries "    { \"id\": \"%s\", \"wall_s\": %.3f }" !wall_times)
        (entries "    { \"name\": \"%s\", \"ms_per_run\": %.6f }" !bechamel_estimates));
  Printf.printf "[json] wrote %s\n%!" path

(* CSV export: one file per experiment, for downstream plotting. *)
let write_csv name header rows =
  match csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (name ^ ".csv") in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (String.concat "," header ^ "\n");
          List.iter (fun row -> output_string oc (String.concat "," row ^ "\n")) rows);
      Printf.printf "  [csv] wrote %s (%d rows)\n%!" path (List.length rows)

let loops, suite_id =
  match sample_size with
  | None -> (Wr_workload.Suite.perfect_club_like (), "full")
  | Some n -> (Wr_workload.Suite.sample n, Printf.sprintf "sample%d" n)

(* A small fixed slice for the timing runs: big enough to exercise the
   machinery, small enough for sub-second Bechamel quotas. *)
let timing_loops = Wr_workload.Suite.sample 30

let fresh_suite_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "bench-%d" !counter

(* ------------------------------------------------------------------ *)
(* Bechamel                                                            *)

let time_test name staged =
  let test = Test.make ~name (Staged.stage staged) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun key o ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) ->
          bechamel_estimates := (key, est /. 1e6) :: !bechamel_estimates;
          Printf.printf "  [bechamel] %s: %.3f ms/run\n%!" key (est /. 1e6)
      | _ -> Printf.printf "  [bechamel] %s: no estimate\n%!" key)
    results

(* ------------------------------------------------------------------ *)
(* Experiments: printed output + timing payload                        *)

let paper_note s = print_string ("NOTE: " ^ s ^ "\n")

let run_experiment id =
  Printf.printf "==================================================================\n";
  Printf.printf "=== %s\n==================================================================\n%!" id;
  let started = Unix.gettimeofday () in
  (match id with
  | "table1" ->
      print_string (Core.Cost_tables.table1 ());
      paper_note "Paper: Table 1 is input data (SIA 1994 roadmap); reproduced exactly."
  | "table2" ->
      print_string (Core.Cost_tables.table2 ());
      paper_note
        "Paper: cells 50x41 .. 568x257; the piecewise-linear model is anchored on the five \
         published cells (exact)."
  | "table3" ->
      print_string (Core.Cost_tables.table3 ());
      paper_note "Paper: 598 / 375 / 215 x10^6 lambda^2 - reproduced within 1%."
  | "table4" ->
      print_string (Core.Cost_tables.table4 ());
      write_csv "table4"
        [ "buses"; "width"; "registers"; "model"; "paper" ]
        (List.map
           (fun ((x, y, z), model, paper) ->
             [
               string_of_int x; string_of_int y; string_of_int z;
               Printf.sprintf "%.4f" model; Printf.sprintf "%.2f" paper;
             ])
           (Core.Cost_tables.table4_pairs ()));
      paper_note
        "Paper: 60 relative access times; fitted model reproduces them at 3.6% rms (max 8.9%)."
  | "table5" ->
      print_string (Core.Implementability.to_text (Core.Implementability.run ()));
      print_string "With the conservative 10% area budget instead:\n";
      print_string (Core.Implementability.to_text (Core.Implementability.run ~budget:0.10 ()));
      paper_note
        "Paper: Table 5 symbols; same 20%-of-die rule, same grid.  Cell-model extrapolation \
         shifts a few borderline entries by one generation."
  | "table6" ->
      print_string (Core.Cost_tables.table6 ());
      paper_note "Paper: Table 6 is input data (latency adaptation); reproduced exactly."
  | "fig2" ->
      let t = Core.Peak_study.run loops in
      print_string (Core.Peak_study.to_text t);
      write_csv "fig2" Core.Csv_export.fig2_header (Core.Csv_export.fig2_rows t);
      paper_note
        "Paper shape: Xw1 saturates near 10, 1wY near 5, 2wY in between; Xw2 tracks Xw1 \
         closely."
  | "fig3" ->
      let t = Core.Spill_study.run ~suite_id loops in
      print_string (Core.Spill_study.to_text t);
      write_csv "fig3" Core.Csv_export.fig3_header (Core.Csv_export.fig3_rows t);
      let fams =
        Core.Spill_study.run_families ~suite_id (Wr_workload.Suite.families_for ~sample:sample_size)
      in
      List.iter
        (fun (name, ft) ->
          Printf.printf "---- family %s ----\n%s" name (Core.Spill_study.to_text ft))
        fams;
      write_csv "fig3_families" Core.Csv_export.fig3_families_header
        (Core.Csv_export.fig3_families_rows fams);
      paper_note
        "Paper shape: 8w1/32 unschedulable; 4w2 beats 8w1 at 64 and 128 registers; 1w2 \
         saturates by 64 registers."
  | "fig4" ->
      print_string (Core.Cost_tables.figure4 ());
      paper_note "Paper: area of RF+FPUs against the 10-20% SIA bands."
  | "fig6" ->
      print_string (Core.Cost_tables.figure6 ());
      paper_note
        "Paper shape: area grows (exponential-ish), access time falls (logarithmic-ish); \
         2-partitioning is the sweet spot."
  | "fig7" ->
      print_string (Core.Code_size_study.to_text (Core.Code_size_study.run ~suite_id loops));
      paper_note "Paper: the 1 / 0.5 / 0.25 / 0.125 best-case series."
  | "fig8" ->
      print_string (Core.Tradeoff.figure8 ~suite_id loops);
      paper_note
        "Paper shape: (a) small files win once cycle time is charged; (b) replication gains \
         but at exploding area; (c) widening gains cheaply then saturates; (d) the mixed \
         configurations win the factor-8 group."
  | "fig9" ->
      let t = Core.Tradeoff.figure9 ~suite_id loops in
      print_string (Core.Tradeoff.figure9_text t);
      write_csv "fig9" Core.Csv_export.fig9_header (Core.Csv_export.fig9_rows t);
      let fams =
        Core.Tradeoff.figure9_families ~suite_id (Wr_workload.Suite.families_for ~sample:sample_size)
      in
      List.iter
        (fun (name, ft) ->
          Printf.printf "---- family %s ----\n%s" name (Core.Tradeoff.figure9_text ft))
        fams;
      write_csv "fig9_families" Core.Csv_export.fig9_families_header
        (Core.Csv_export.fig9_families_rows fams);
      paper_note
        "Paper shape: top-five lists are dominated by small replication x widening mixes; \
         the most aggressive configurations never appear."
  | "conclusion" ->
      print_string (Core.Tradeoff.conclusion ~suite_id loops);
      paper_note "Paper: 4w2(128) = 1.66x the performance of 8w1(128) in 81% of the area."
  | "ablation-compact" ->
      print_string (Core.Ablation.compactability ());
      paper_note
        "Beyond the paper: sensitivity of the Figure 2 series to the workload's stride-1 fraction — widening collapses on strided code, replication barely moves."
  | "ablation-levers" ->
      print_string (Core.Ablation.pressure_levers (Wr_workload.Suite.sample 150));
      paper_note
        "Beyond the paper: the two MICRO-29 register-pressure levers in isolation; II escalation carries most of the benefit on this workload, spilling adds bus traffic."
  | "ablation-rotating" ->
      print_string (Core.Ablation.rotating_file (Wr_workload.Suite.sample 80));
      paper_note
        "Beyond the paper: the wands model prices a rotating register file; a conventional file (modulo variable expansion) needs ~1.3-1.5x the registers and up to 12x kernel code growth."
  | "ablation-ordering" ->
      print_string (Core.Ablation.scheduler_orderings (Wr_workload.Suite.sample 150));
      paper_note
        "Beyond the paper: IMS height priority vs the authors' later SMS swing ordering — \
         both reach the MII on almost every loop; SMS trades a little II robustness for \
         shorter lifetimes.";
  | "icache" ->
      print_string (Core.Icache_study.to_text (Core.Icache_study.run (Wr_workload.Suite.sample 200)));
      paper_note
        "Beyond the paper (predicted in its Section 2): at equal peak capability the \
         replication-heavy machines' wide words and large MVE unrolls overflow small \
         instruction caches far more often than the widened machines."
  | "traffic" ->
      print_string (Core.Traffic_study.to_text (Core.Traffic_study.run (Wr_workload.Suite.sample 200)));
      paper_note
        "Beyond the paper (its Section 3.2 caveat, quantified): spill code's extra memory \
         operations as a share of program traffic — the wide register file's capacity keeps \
         the widened machines' spill traffic low.";
  | "dcache" ->
      print_string
        (Core.Dcache_study.to_text (Core.Dcache_study.run (Wr_workload.Suite.sample 120)));
      paper_note
        "Beyond the paper: replaying each schedule's real memory trace (spill slots \
         included) through a direct-mapped L1 — spill code's cache pollution on top of the \
         bus slots the paper counts.";
  | "balance" ->
      print_string (Core.Balance_study.to_text (Core.Balance_study.run loops));
      paper_note
        "The paper's footnote 1, reproduced: 1 bus + 2 FPUs is the best 3-slot split, and 2:1 \
         stays within ~7% of the best at larger budgets (our synthetic mix is slightly \
         memory-heavier than the Perfect Club's, drifting the optimum toward 1.4:1).";
  | "endtoend" ->
      (* Cycle-level validation: schedule + MVE allocation + simulation
         against the reference interpreter, bit for bit. *)
      let sample = Wr_workload.Suite.sample 60 in
      let configs = [ (1, 1); (2, 2); (4, 2); (2, 4) ] in
      let checked = ref 0 and failed = ref 0 in
      Array.iter
        (fun loop ->
          List.iter
            (fun (x, y) ->
              incr checked;
              match
                Wr_vliw.Sim.check_against_reference loop (Config.xwy ~x ~y ()) ~iterations:5
              with
              | Ok _ -> ()
              | Error msg ->
                  incr failed;
                  Printf.printf "  MISMATCH %s on %dw%d: %s
" loop.Wr_ir.Loop.name x y msg)
            configs)
        sample;
      Printf.printf
        "End-to-end validation: %d (loop, config) points simulated cycle-by-cycle, %d mismatches against the reference interpreter.
"
        !checked !failed;
      if !failed > 0 then
        defer_failure (Printf.sprintf "endtoend: %d simulation mismatch(es)" !failed);
      paper_note
        "Beyond the paper: every schedule is executed on a cycle-level simulator with MVE          register assignment and compared bit-for-bit with sequential semantics."
  | "gap" ->
      (* HRMS-vs-optimal study: the exact branch-and-bound backend
         refines the heuristic schedule of every (family, loop, config)
         point and reports the II gap.  BENCH_gap.json is always
         written so CI can assert gap >= 0 on every row and that at
         least one point was proved optimal. *)
      let families = Wr_workload.Suite.families_for ~sample:sample_size in
      let t0 = Unix.gettimeofday () in
      let t = Core.Gap_study.run families in
      let wall = Unix.gettimeofday () -. t0 in
      print_string (Core.Gap_study.to_text t);
      write_csv "gap" Core.Csv_export.gap_header (Core.Csv_export.gap_rows t);
      let path = "BENCH_gap.json" in
      B.write_file path
        (B.envelope ~kind:"gap"
           [
             ("suite", B.str suite_id);
             ("points", B.int t.Core.Gap_study.points);
             ("proved_optimal", B.int t.Core.Gap_study.proved_optimal);
             ("improved", B.int t.Core.Gap_study.improved);
             ("timeout", B.int t.Core.Gap_study.fallback);
             ("gap_total", B.int t.Core.Gap_study.gap_total);
             ("max_gap", B.int t.Core.Gap_study.max_gap);
             ("nodes_total", B.int t.Core.Gap_study.nodes_total);
             ("wall_s", B.float ~fmt:(Printf.sprintf "%.3f") wall);
             ( "rows",
               B.List
                 (List.map
                    (fun (r : Core.Gap_study.row) ->
                      B.Obj
                        [
                          ("family", B.str r.Core.Gap_study.family);
                          ("loop", B.str r.Core.Gap_study.loop_name);
                          ("config", B.str (Config.label_short r.Core.Gap_study.config));
                          ("ops", B.int r.Core.Gap_study.ops);
                          ("mii", B.int r.Core.Gap_study.mii);
                          ("heur_ii", B.int r.Core.Gap_study.heur_ii);
                          ("exact_ii", B.int r.Core.Gap_study.exact_ii);
                          ("gap", B.int r.Core.Gap_study.gap);
                          ( "status",
                            B.str (Core.Gap_study.status_string r.Core.Gap_study.status) );
                          ("nodes", B.int r.Core.Gap_study.nodes);
                          ("evictions", B.int r.Core.Gap_study.evictions);
                        ])
                    t.Core.Gap_study.rows) );
           ]);
      Printf.printf "[json] wrote %s\n%!" path;
      record_wall "gap/study-total" wall;
      paper_note
        "Beyond the paper: branch-and-bound lower bounds on the II quantify how close the \
         HRMS-style heuristic sits to optimal on this workload."
  | "parspeed" ->
      (* Sequential-vs-parallel wall time of the two heaviest
         experiments, with an output-identity check: the speedup is
         measured, and the determinism contract verified, on every
         run.  Fresh suite ids + cache clears keep the memo table from
         leaking work between the timed runs. *)
      let par_jobs = Stdlib.max 1 (effective_jobs ()) in
      let timed_run jobs =
        Wr_util.Pool.set_default_jobs jobs;
        Core.Evaluate.clear_cache ();
        let sid = fresh_suite_id () in
        let t0 = Unix.gettimeofday () in
        let fig3 = Core.Spill_study.to_text (Core.Spill_study.run ~suite_id:sid loops) in
        let t1 = Unix.gettimeofday () in
        let fig9 = Core.Tradeoff.figure9_text (Core.Tradeoff.figure9 ~suite_id:sid loops) in
        let t2 = Unix.gettimeofday () in
        (fig3, fig9, t1 -. t0, t2 -. t1)
      in
      let s3, s9, seq3, seq9 = timed_run 1 in
      let p3, p9, par3, par9 = timed_run par_jobs in
      Wr_util.Pool.set_default_jobs par_jobs;
      record_wall "parspeed/fig3-jobs1" seq3;
      record_wall (Printf.sprintf "parspeed/fig3-jobs%d" par_jobs) par3;
      record_wall "parspeed/fig9-jobs1" seq9;
      record_wall (Printf.sprintf "parspeed/fig9-jobs%d" par_jobs) par9;
      Printf.printf "fig3: %.2fs with 1 job, %.2fs with %d jobs -> %.2fx\n" seq3 par3 par_jobs
        (seq3 /. Stdlib.max 1e-9 par3);
      Printf.printf "fig9: %.2fs with 1 job, %.2fs with %d jobs -> %.2fx\n" seq9 par9 par_jobs
        (seq9 /. Stdlib.max 1e-9 par9);
      let identical = String.equal s3 p3 && String.equal s9 p9 in
      Printf.printf "outputs bit-identical across pool sizes: %b\n" identical;
      if not identical then
        defer_failure "parspeed: sequential and parallel outputs differ!";
      paper_note
        (Printf.sprintf
           "Engine check: per-loop scheduling fans out over %d domain(s) \
            (Domain.recommended_domain_count %d on this machine); output is verified \
            bit-identical to the sequential engine."
           par_jobs
           (Domain.recommended_domain_count ()))
  | "schedmicro" ->
      (* Scheduler microbenchmark: Modulo.run alone — no widening, no
         register allocation, no study logic — on the suite loops that
         make the scheduler work hardest.  A ranking pass schedules
         every loop once at 4w2 and keeps the ~20 with the most
         placement steps; each survivor is then timed over [reps]
         repeated runs.  BENCH_sched.json records the per-loop wall
         times and the total so the scheduler's perf trajectory is
         tracked commit over commit. *)
      let config = Config.xwy ~x:4 ~y:2 () in
      let resource = Wr_machine.Resource.of_config config in
      let cm = Cycle_model.Cycles_4 in
      let top_n = 20 and reps = 10 in
      let ranked =
        Array.to_list
          (Array.mapi
             (fun i (loop : Wr_ir.Loop.t) ->
               let prepared, _ =
                 Wr_widen.Transform.widen loop ~width:config.Config.width
               in
               let ddg = prepared.Wr_ir.Loop.ddg in
               let r = Wr_sched.Modulo.run resource ~cycle_model:cm ddg in
               (loop.Wr_ir.Loop.name, i, ddg, r.Wr_sched.Modulo.placements))
             loops)
      in
      let ranked =
        (* Most placement steps first; ties broken by suite position so
           the selection is deterministic. *)
        List.sort
          (fun (_, i, _, a) (_, j, _, b) ->
            if a <> b then compare b a else compare i j)
          ranked
      in
      let top = List.filteri (fun i _ -> i < top_n) ranked in
      let timed =
        List.map
          (fun (name, index, ddg, placements) ->
            let t0 = Unix.gettimeofday () in
            for _ = 1 to reps do
              ignore (Wr_sched.Modulo.run resource ~cycle_model:cm ddg)
            done;
            let per_run = (Unix.gettimeofday () -. t0) /. float_of_int reps in
            (name, index, placements, per_run))
          top
      in
      let total = List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0.0 timed in
      Printf.printf "%-28s %6s %10s %12s\n" "loop" "index" "placements" "ms/run";
      List.iter
        (fun (name, index, placements, s) ->
          Printf.printf "%-28s %6d %10d %12.3f\n" name index placements (s *. 1e3))
        timed;
      Printf.printf "total: %.3f ms over the top %d loops (%d reps each, 4w2, Cycles_4)\n"
        (total *. 1e3) (List.length timed) reps;
      let path = "BENCH_sched.json" in
      B.write_file path
        (B.envelope ~kind:"sched"
           [
             ("suite", B.str suite_id);
             ("config", B.str "4w2");
             ("cycle_model", B.int 4);
             ("reps", B.int reps);
             ( "loops",
               B.List
                 (List.map
                    (fun (name, index, placements, s) ->
                      B.Obj
                        [
                          ("name", B.str name);
                          ("index", B.int index);
                          ("placements", B.int placements);
                          ("wall_s", B.float ~fmt:(Printf.sprintf "%.6f") s);
                        ])
                    timed) );
             ("total_s", B.float ~fmt:(Printf.sprintf "%.6f") total);
           ]);
      Printf.printf "[json] wrote %s\n%!" path;
      record_wall "schedmicro/top-loops-total" total;
      paper_note
        "Engine microbenchmark: isolates the modulo scheduler's wall time from the rest of \
         the evaluation pipeline."
  | "interpmicro" ->
      (* Interpreter microbenchmark: the flat kernel (compile +
         run_plan) against the retained reference engine, loop by loop.
         The selection is the suite loops with the most operations
         (where the interpreter works hardest) plus the whole stencil
         family (which exercises Fma and the in-place memory arenas).
         Every pair of runs is first checked bit-identical, then timed;
         BENCH_interp.json records ns/iteration and allocated bytes per
         iteration for both engines so the interpreter's perf
         trajectory is tracked commit over commit. *)
      let module Interp = Wr_vliw.Interp in
      let iterations = 1000 and reps = 25 and top_n = 12 in
      let ranked =
        Array.to_list
          (Array.mapi
             (fun i (loop : Wr_ir.Loop.t) ->
               (loop.Wr_ir.Loop.name, i, loop, Wr_ir.Ddg.num_ops loop.Wr_ir.Loop.ddg))
             loops)
      in
      let ranked =
        (* Most operations first; ties broken by suite position so the
           selection is deterministic. *)
        List.sort
          (fun (_, i, _, a) (_, j, _, b) -> if a <> b then compare b a else compare i j)
          ranked
      in
      let picked =
        List.filteri (fun i _ -> i < top_n) ranked
        @ List.map
            (fun (name, loop) ->
              (name, -1, loop, Wr_ir.Ddg.num_ops loop.Wr_ir.Loop.ddg))
            (Wr_workload.Stencil.all ())
      in
      (* Wall and allocation per engine run; both normalized per source
         iteration.  Gc.allocated_bytes is monotonic and per-domain, so
         the delta is exactly this engine's allocation. *)
      let time_runs f =
        let a0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (f ())
        done;
        let wall = Unix.gettimeofday () -. t0 in
        let alloc = Gc.allocated_bytes () -. a0 in
        let per_iter = float_of_int (reps * iterations) in
        (wall, wall /. per_iter *. 1e9, alloc /. per_iter)
      in
      let timed =
        List.map
          (fun (name, index, loop, ops) ->
            let c0 = Unix.gettimeofday () in
            let plan = Interp.compile loop in
            let compile_us = (Unix.gettimeofday () -. c0) *. 1e6 in
            let flat = Interp.run_plan ~iterations plan in
            let refr = Interp.run_reference ~iterations loop in
            if
              not
                (Interp.equal_memory flat refr
                && flat.Interp.loads = refr.Interp.loads
                && flat.Interp.stores = refr.Interp.stores
                && flat.Interp.flops = refr.Interp.flops)
            then begin
              Printf.eprintf "interpmicro: %s: engines disagree!\n" name;
              exit 2
            end;
            let ref_wall, ref_ns, ref_alloc =
              time_runs (fun () -> Interp.run_reference ~iterations loop)
            in
            let flat_wall, flat_ns, flat_alloc =
              time_runs (fun () -> Interp.run_plan ~iterations plan)
            in
            (name, index, ops, compile_us, ref_wall, ref_ns, ref_alloc, flat_wall,
             flat_ns, flat_alloc))
          picked
      in
      Printf.printf "%-28s %5s %5s %12s %12s %8s %10s %10s\n" "loop" "index" "ops"
        "ref_ns/iter" "flat_ns/iter" "speedup" "ref_B/iter" "flat_B/iter";
      List.iter
        (fun (name, index, ops, _, _, ref_ns, ref_alloc, _, flat_ns, flat_alloc) ->
          Printf.printf "%-28s %5d %5d %12.1f %12.1f %7.2fx %10.1f %10.1f\n" name index
            ops ref_ns flat_ns
            (ref_ns /. Stdlib.max 1e-9 flat_ns)
            ref_alloc flat_alloc)
        timed;
      let ref_total =
        List.fold_left (fun acc (_, _, _, _, w, _, _, _, _, _) -> acc +. w) 0.0 timed
      in
      let flat_total =
        List.fold_left (fun acc (_, _, _, _, _, _, _, w, _, _) -> acc +. w) 0.0 timed
      in
      let speedup = ref_total /. Stdlib.max 1e-9 flat_total in
      Printf.printf
        "total: reference %.3fs, flat %.3fs -> %.2fx over %d loops (%d reps x %d \
         iterations each)\n"
        ref_total flat_total speedup (List.length timed) reps iterations;
      let path = "BENCH_interp.json" in
      let f2 = Printf.sprintf "%.2f" and f3 = Printf.sprintf "%.3f" in
      B.write_file path
        (B.envelope ~kind:"interp"
           [
             ("suite", B.str suite_id);
             ("iterations", B.int iterations);
             ("reps", B.int reps);
             ( "loops",
               B.List
                 (List.map
                    (fun ( name, index, ops, compile_us, _, ref_ns, ref_alloc, _, flat_ns,
                           flat_alloc ) ->
                      B.Obj
                        [
                          ("name", B.str name);
                          ("index", B.int index);
                          ("ops", B.int ops);
                          ("compile_us", B.float ~fmt:f2 compile_us);
                          ("ref_ns_per_iter", B.float ~fmt:f2 ref_ns);
                          ("flat_ns_per_iter", B.float ~fmt:f2 flat_ns);
                          ("speedup", B.float ~fmt:f3 (ref_ns /. Stdlib.max 1e-9 flat_ns));
                          ("ref_alloc_b_per_iter", B.float ~fmt:f2 ref_alloc);
                          ("flat_alloc_b_per_iter", B.float ~fmt:f2 flat_alloc);
                        ])
                    timed) );
             ("ref_total_s", B.float ~fmt:(Printf.sprintf "%.6f") ref_total);
             ("flat_total_s", B.float ~fmt:(Printf.sprintf "%.6f") flat_total);
             ("speedup", B.float ~fmt:f3 speedup);
           ]);
      Printf.printf "[json] wrote %s\n%!" path;
      record_wall "interpmicro/reference-total" ref_total;
      record_wall "interpmicro/flat-total" flat_total;
      paper_note
        "Engine microbenchmark: isolates the functional interpreter (the oracle engine \
         behind every --verify run) from scheduling and study logic; both engines are \
         checked bit-identical before timing."
  | "fuzz" when backend_diff ->
      (* Differential bug hunt: every seeded case scheduled by both the
         heuristic and the exact backend.  Bugs (oracle failures, exact
         II above heuristic, exact II below MII) fail the run with a
         reproducer; exact < heuristic with both schedules valid is an
         optimality-gap lead, logged but benign. *)
      Printf.printf "backend-diff fuzzing %d cases (seed %#Lx)\n%!" fuzz_cases fuzz_seed;
      let stats =
        Wr_check.Fuzz.run_backend_diff
          ~on_case:(fun i ->
            if (i + 1) mod 50 = 0 then Printf.printf "  ... %d cases done\n%!" (i + 1))
          ~seed:fuzz_seed ~cases:fuzz_cases ()
      in
      Printf.printf "%s\n" (Wr_check.Fuzz.diff_summary stats);
      List.iter
        (fun d ->
          Printf.printf "---- gap lead ----\n%s\n" (Wr_check.Fuzz.diff_reproducer d))
        stats.Wr_check.Fuzz.dgaps;
      List.iter
        (fun d ->
          Printf.printf "---- reproducer ----\n%s\n" (Wr_check.Fuzz.diff_reproducer d))
        stats.Wr_check.Fuzz.dbug_cases;
      if stats.Wr_check.Fuzz.dbug_cases <> [] then
        defer_failure
          (Printf.sprintf "fuzz --backend-diff: %d bug case(s)"
             (List.length stats.Wr_check.Fuzz.dbug_cases));
      paper_note
        "Engine check: the exact backend cross-examines the heuristic on every case — any \
         heuristic II the exact search beats is a logged optimality gap, any invalid or \
         worse exact schedule is a bug."
  | "fuzz" ->
      (* Randomized end-to-end verification: seeded (generator loop x
         design-space point) pairs through the full
         schedule -> allocate -> spill -> reschedule pipeline under
         every Wr_check oracle; a failure prints a Text_format
         reproducer and fails the run. *)
      Printf.printf "fuzzing %d cases (seed %#Lx)\n%!" fuzz_cases fuzz_seed;
      let stats =
        Wr_check.Fuzz.run
          ~on_case:(fun i ->
            if (i + 1) mod 50 = 0 then Printf.printf "  ... %d cases done\n%!" (i + 1))
          ~seed:fuzz_seed ~cases:fuzz_cases ()
      in
      Printf.printf "%s\n" (Wr_check.Fuzz.summary stats);
      List.iter
        (fun f ->
          Printf.printf "---- reproducer ----\n%s\n" (Wr_check.Fuzz.reproducer f))
        stats.Wr_check.Fuzz.failures;
      if stats.Wr_check.Fuzz.failures <> [] then
        defer_failure
          (Printf.sprintf "fuzz: %d case(s) violated an oracle"
             (List.length stats.Wr_check.Fuzz.failures));
      paper_note
        "Engine check: every case re-verified by the independent invariant oracles \
         (dependences, reservation table, wands allocation, spill semantics)."
  | "profile" ->
      (* Per-stage profile of the full evaluation pipeline: run the
         fig3 study (the heaviest exerciser of schedule + allocate +
         spill + retry) with telemetry on, then break down where the
         time and the retries went.  --trace/--metrics dump the same
         run's raw data at exit. *)
      let module Obs = Wr_obs.Obs in
      Obs.set_enabled true;
      Core.Evaluate.clear_cache ();
      Obs.reset ();
      let t0 = Unix.gettimeofday () in
      let table = Core.Spill_study.run ~suite_id loops in
      let wall = Unix.gettimeofday () -. t0 in
      ignore table;
      let snap = Obs.snapshot () in
      let counter name =
        Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)
      in
      Printf.printf "Pipeline profile: fig3 study, %d loops, %d jobs, %.2fs wall\n\n"
        (Array.length loops) (effective_jobs ()) wall;
      Printf.printf "%-18s %9s %10s %10s %10s\n" "stage" "spans" "total_s" "mean_ms"
        "max_ms";
      List.iter
        (fun (name, st) ->
          Printf.printf "%-18s %9d %10.3f %10.3f %10.3f\n" name st.Obs.span_count
            (float_of_int st.Obs.span_total_ns /. 1e9)
            (float_of_int st.Obs.span_total_ns /. 1e6 /. float_of_int st.Obs.span_count)
            (float_of_int st.Obs.span_max_ns /. 1e6))
        snap.Obs.spans;
      Printf.printf
        "(stages nest and run concurrently: eval/suite fans out per-loop tasks while the \
         study fans out eval/suite points, eval/loop contains sched/modulo, alloc and \
         spill/apply — totals are per-stage CPU time, not wall time)\n\n";
      let loop_spans =
        List.filter (fun e -> e.Obs.ev_name = "eval/loop") (Obs.events ())
      in
      let slowest =
        List.sort (fun a b -> compare b.Obs.ev_dur_ns a.Obs.ev_dur_ns) loop_spans
      in
      Printf.printf "Top 10 slowest (loop, machine point) evaluations:\n";
      List.iteri
        (fun i e ->
          if i < 10 then
            Printf.printf "  %8.2f ms  %-24s %s\n"
              (float_of_int e.Obs.ev_dur_ns /. 1e6)
              (Option.value ~default:"?" (List.assoc_opt "loop" e.Obs.ev_args))
              (Option.value ~default:"?" (List.assoc_opt "config" e.Obs.ev_args)))
        slowest;
      Printf.printf "\nII escalation above the scheduler's first attempt (per Modulo.run):\n";
      (match List.assoc_opt "sched/ii_minus_start" snap.Obs.histograms with
      | None | Some [] -> Printf.printf "  (no scheduler runs recorded)\n"
      | Some bins ->
          let total = List.fold_left (fun acc (_, c) -> acc + c) 0 bins in
          List.iter
            (fun (v, c) ->
              Printf.printf "  +%-3d %7d  (%5.1f%%)\n" v c
                (100.0 *. float_of_int c /. float_of_int total))
            bins);
      let rate (s : Core.Evaluate.cache_stats) =
        let t = s.Core.Evaluate.hits + s.Core.Evaluate.misses in
        if t = 0 then 0.0 else 100.0 *. float_of_int s.Core.Evaluate.hits /. float_of_int t
      in
      let ls = Core.Evaluate.cache_stats `Loop in
      let ss = Core.Evaluate.cache_stats `Suite in
      Printf.printf "\nCache hit rates:\n";
      Printf.printf "  suite-level: %d hits / %d misses (%.1f%%)\n" ss.Core.Evaluate.hits
        ss.Core.Evaluate.misses (rate ss);
      Printf.printf "  loop-level:  %d hits / %d misses (%.1f%%)\n" ls.Core.Evaluate.hits
        ls.Core.Evaluate.misses (rate ls);
      Printf.printf "\nScheduler and spill totals:\n";
      List.iter
        (fun name -> Printf.printf "  %-24s %d\n" name (counter name))
        [ "eval/evaluations"; "sched/runs"; "sched/attempts"; "sched/evictions";
          "sched/forces"; "sched/budget_exhausted"; "driver/probes"; "spill/vregs_spilled";
          "spill/stores_added"; "spill/loads_added"; "spill/reloads_memoized" ];
      (* The exact backend's search counters only tick under
         --backend exact/portfolio (or after a gap run); suppress the
         section when the heuristic handled everything. *)
      if counter "search/at_ii" > 0 then begin
        Printf.printf "\nExact-backend search totals:\n";
        List.iter
          (fun name -> Printf.printf "  %-24s %d\n" name (counter name))
          [ "search/runs"; "search/at_ii"; "search/nodes"; "search/phase1_probes";
            "search/phase2_probes"; "search/prune_resource"; "search/prune_window";
            "search/prune_backtrack"; "search/exhausted"; "exact/nodes"; "exact/improved" ];
        match List.assoc_opt "search/nodes_per_attempt" snap.Obs.histograms with
        | None | Some [] -> ()
        | Some bins ->
            Printf.printf "  nodes per II attempt (>1024 clamped into the overflow bin):\n";
            List.iter (fun (v, c) -> Printf.printf "    %5d %7d\n" v c) bins
      end;
      Printf.printf "\nPool utilization (%d jobs):\n" (effective_jobs ());
      if snap.Obs.lanes = [] then
        Printf.printf "  (no pool tasks: single-domain run executes inline)\n"
      else
        List.iter
          (fun lane ->
            let v name =
              Option.value ~default:0 (List.assoc_opt name lane.Obs.lane_counters)
            in
            Printf.printf "  lane %d: %d tasks, busy %.2fs (%.0f%% of wall), idle %.2fs\n"
              lane.Obs.lane_id (v "pool/tasks_run")
              (float_of_int (v "pool/busy_ns") /. 1e9)
              (100.0 *. float_of_int (v "pool/busy_ns") /. 1e9 /. wall)
              (float_of_int (v "pool/idle_ns") /. 1e9))
          snap.Obs.lanes;
      paper_note
        "Engine profile: the paper's figures aggregate exactly these per-loop events \
         (II escalations, spills, retries); this table is the raw distribution."
  | _ -> usage ());
  record_wall id (Unix.gettimeofday () -. started);
  Printf.printf "[%s generated in %.1fs]\n" id (Unix.gettimeofday () -. started);
  print_newline ();
  if with_timing then begin
    (match id with
    | "table1" | "table6" -> time_test (id ^ "/render") (fun () -> Core.Cost_tables.table1 ())
    | "table2" ->
        time_test "table2/cell-model" (fun () ->
            List.iter
              (fun ((r, w), _) -> ignore (Wr_cost.Register_cell.area ~reads:r ~writes:w))
              Wr_cost.Register_cell.paper_table)
    | "table3" | "fig4" ->
        time_test "area-model/grid" (fun () ->
            List.iter
              (fun c -> ignore (Wr_cost.Area.total_area c))
              (Config.paper_grid ~max_factor:16 ~registers:[ 32; 64; 128; 256 ]))
    | "table4" ->
        time_test "access-time/grid" (fun () ->
            List.iter
              (fun c -> ignore (Wr_cost.Access_time.relative c))
              (Config.paper_grid ~max_factor:16 ~registers:[ 32; 64; 128; 256 ]))
    | "table5" ->
        time_test "table5/implementability" (fun () -> ignore (Core.Implementability.run ()))
    | "fig2" ->
        time_test "fig2/peak-rates-30-loops" (fun () ->
            ignore (Core.Peak_study.run ~max_factor:16 timing_loops))
    | "fig3" ->
        time_test "fig3/pipeline-4w2-64-30-loops" (fun () ->
            ignore
              (Core.Evaluate.suite_on ~suite_id:(fresh_suite_id ())
                 (Config.xwy ~registers:64 ~x:4 ~y:2 ())
                 ~cycle_model:Cycle_model.Cycles_4 ~registers:64 timing_loops))
    | "fig6" ->
        time_test "fig6/partition-model" (fun () ->
            List.iter
              (fun n ->
                let c = Config.xwy ~registers:64 ~partitions:n ~x:8 ~y:1 () in
                ignore (Wr_cost.Area.rf_area c);
                ignore (Wr_cost.Access_time.raw_time c))
              [ 1; 2; 4; 8 ])
    | "fig7" ->
        time_test "fig7/code-size-30-loops" (fun () ->
            ignore (Core.Code_size_study.run ~suite_id:(fresh_suite_id ()) timing_loops))
    | "fig8" | "fig9" | "conclusion" ->
        time_test (id ^ "/tradeoff-point-30-loops") (fun () ->
            ignore
              (Core.Tradeoff.evaluate ~suite_id:(fresh_suite_id ()) timing_loops
                 (Config.xwy ~registers:128 ~partitions:2 ~x:2 ~y:2 ())))
    | "endtoend" ->
        time_test "endtoend/sim-daxpy-2w2-100-iters" (fun () ->
            match
              Wr_vliw.Sim.check_against_reference
                (Wr_workload.Kernels.daxpy ())
                (Config.xwy ~x:2 ~y:2 ())
                ~iterations:100
            with
            | Ok _ -> ()
            | Error msg -> failwith msg)
    | "ablation-rotating" ->
        time_test "ablation/mve-allocate-30-loops" (fun () ->
            Array.iter
              (fun (loop : Wr_ir.Loop.t) ->
                let r =
                  Wr_sched.Modulo.run
                    (Wr_machine.Resource.of_config (Config.xwy ~x:2 ~y:1 ()))
                    ~cycle_model:Cycle_model.Cycles_4 loop.Wr_ir.Loop.ddg
                in
                ignore
                  (Wr_vliw.Codegen.allocate loop.Wr_ir.Loop.ddg r.Wr_sched.Modulo.schedule))
              timing_loops)
    | _ -> ());
    print_newline ()
  end

let () =
  Printf.printf "Widening-resources study bench harness (suite: %s, %d loops, %d jobs)\n\n%!"
    suite_id (Array.length loops) (effective_jobs ());
  Printf.printf "%s\n" (Wr_workload.Suite.statistics loops);
  (* parspeed re-times fig3/fig9 at two pool sizes; keep it out of
     "all" so the default full run isn't doubled.  Invoke explicitly. *)
  (* parspeed, gap, fuzz and profile are explicit-only modes: the
     first doubles the heavy figures, gap runs a branch-and-bound
     search per point, the third is a verification pass, and the
     fourth re-runs fig3 under tracing — none is a figure of the
     paper. *)
  if selected = "all" then
    List.iter run_experiment
      (List.filter
         (fun e -> e <> "parspeed" && e <> "gap" && e <> "fuzz" && e <> "profile")
         experiments)
  else run_experiment selected;
  if Core.Evaluate.verify_enabled () then
    Printf.printf "[verify] %d (loop, machine-point) results passed all oracles, 0 violations\n"
      (Core.Evaluate.verified_points ());
  Option.iter (fun path -> write_json path ~suite_id ~loops) json_path;
  Option.iter
    (fun path ->
      Wr_obs.Obs.write_trace path;
      Printf.printf "[trace] wrote %s\n%!" path)
    trace_path;
  Option.iter
    (fun path ->
      Wr_obs.Obs.write_metrics path;
      Printf.printf "[metrics] wrote %s\n%!" path)
    metrics_path;
  Option.iter
    (fun path ->
      Core.Provenance.write path;
      Printf.printf "[ledger] wrote %s (%d points)\n%!" path
        (List.length (Core.Provenance.records ())))
    ledger_path;
  Option.iter
    (fun dir ->
      let s = Core.Evaluate.cache_stats `Store in
      Printf.printf "[store] %s: %d entries, %d hits, %d misses, %d appended\n%!" dir
        (Core.Evaluate.store_entries ()) s.Core.Evaluate.hits s.Core.Evaluate.misses
        (Core.Evaluate.store_appended ());
      Core.Evaluate.detach_store ())
    store_dir;
  Core.Evaluate.detach_journal ();
  (match List.rev !deferred_failures with
  | [] -> ()
  | fs ->
      List.iter (fun msg -> Printf.eprintf "%s\n" msg) fs;
      exit 2);
  (* Quarantine report: every point that degraded to the unpipelined
     fallback instead of killing the run, named precisely enough to
     reproduce (suite, loop, machine point).  Exit 3 distinguishes
     "completed but degraded" from success and from hard failure. *)
  match Core.Evaluate.quarantined () with
  | [] -> ()
  | qs ->
      Printf.printf "\nQuarantined points (%d): degraded to the unpipelined fallback\n"
        (List.length qs);
      Printf.printf "%-10s %6s %-24s %-12s %5s %6s  %s\n" "suite" "index" "loop" "config"
        "regs" "model" "reason";
      List.iter
        (fun (q : Core.Evaluate.quarantine_record) ->
          Printf.printf "%-10s %6d %-24s %-12s %5d %6d  %s\n" q.Core.Evaluate.q_suite
            q.Core.Evaluate.q_index q.Core.Evaluate.q_loop q.Core.Evaluate.q_config
            q.Core.Evaluate.q_registers q.Core.Evaluate.q_cycle_model
            q.Core.Evaluate.q_reason)
        qs;
      exit 3
