(* Sweep the full design space over (a sample of) the loop suite and
   print the Pareto frontier per technology generation: the
   configurations no other implementable configuration beats in both
   performance and area — the decision a processor architect would read
   off the paper.

   Run: dune exec examples/design_space.exe [sample_size] *)

module Config = Wr_machine.Config
module Sia = Wr_cost.Sia

let pareto points =
  (* Keep the points not dominated in (higher speed-up, lower area). *)
  List.filter
    (fun (p : Core.Tradeoff.point) ->
      not
        (List.exists
           (fun (q : Core.Tradeoff.point) ->
             q.Core.Tradeoff.speedup >= p.Core.Tradeoff.speedup
             && q.Core.Tradeoff.area < p.Core.Tradeoff.area
             || q.Core.Tradeoff.speedup > p.Core.Tradeoff.speedup
                && q.Core.Tradeoff.area <= p.Core.Tradeoff.area)
           points))
    points

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 150 in
  let loops = Wr_workload.Suite.sample n in
  let suite_id = Printf.sprintf "design-space-%d" n in
  Printf.printf "Evaluating on %d loops of the suite...\n\n%!" (Array.length loops);
  List.iter
    (fun (g : Sia.generation) ->
      let candidates = Core.Implementability.implementable_configs g in
      let points = List.filter_map (Core.Tradeoff.evaluate ~suite_id loops) candidates in
      let frontier =
        List.sort
          (fun (a : Core.Tradeoff.point) b -> compare a.Core.Tradeoff.area b.Core.Tradeoff.area)
          (pareto points)
      in
      Printf.printf "%s: %d implementable points, %d on the Pareto frontier\n" (Sia.label g)
        (List.length points) (List.length frontier);
      List.iter
        (fun (p : Core.Tradeoff.point) ->
          Printf.printf "  %-14s speed-up %.2f  area %6.0fe6 (%4.1f%% die)  Tc %.2f\n"
            (Config.label p.Core.Tradeoff.config)
            p.Core.Tradeoff.speedup
            (p.Core.Tradeoff.area /. 1e6)
            (100.0 *. p.Core.Tradeoff.area /. g.Sia.lambda2_per_chip)
            p.Core.Tradeoff.tc)
        frontier;
      print_newline ())
    Sia.generations
