(* Quickstart: build a loop with the DSL, widen it, software-pipeline
   it on a 2w2 machine and inspect the result.

   Run: dune exec examples/quickstart.exe *)

module B = Wr_ir.Builder
module Config = Wr_machine.Config
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule

let () =
  (* 1. Describe the loop: y(i) = a*x(i) + y(i), 1000 iterations. *)
  let b = B.create ~name:"my_daxpy" () in
  let a = B.live_in b in
  let x = B.load b ~array_id:0 () in
  let y = B.load b ~array_id:1 () in
  let r = B.fadd b (B.fmul b a x) y in
  B.store b ~array_id:1 () r;
  let loop = B.finish b ~trip_count:1000 () in
  Format.printf "The loop:@.%a@.@." Loop.pp loop;

  (* 2. Pick a machine: 2 buses, 4 FPUs, everything 2 words wide,
     64 registers of 128 bits. *)
  let cfg = Config.xwy ~registers:64 ~x:2 ~y:2 () in
  Printf.printf "Machine: %s (factor %d, %d read + %d write ports)\n\n" (Config.label cfg)
    (Config.factor cfg) (Config.read_ports cfg) (Config.write_ports cfg);

  (* 3. Widen the body for the 2-wide datapath: compactable operations
     pack, the rest get replicated. *)
  let wide, stats = Wr_widen.Transform.widen loop ~width:cfg.Config.width in
  Format.printf "Widening: %a@.@." Wr_widen.Transform.pp_stats stats;

  (* 4. Software-pipeline under the machine's own clock (the register
     file's access time picks the latency model). *)
  let cycle_model = Wr_cost.Access_time.cycle_model_of cfg in
  Printf.printf "Relative cycle time Tc = %.2f -> %s latencies\n\n"
    (Wr_cost.Access_time.relative cfg)
    (Wr_machine.Cycle_model.to_string cycle_model);
  match
    Wr_regalloc.Driver.run (Resource.of_config cfg) ~cycle_model
      ~registers:cfg.Config.registers wide.Loop.ddg
  with
  | Wr_regalloc.Driver.Unschedulable msg -> Printf.printf "unschedulable: %s\n" msg
  | Wr_regalloc.Driver.Scheduled s ->
      let ii = s.Wr_regalloc.Driver.schedule.Schedule.ii in
      Printf.printf "Scheduled: II=%d (MII=%d), %d pipeline stages\n" ii
        s.Wr_regalloc.Driver.mii
        (Schedule.stage_count s.Wr_regalloc.Driver.schedule);
      Printf.printf "Registers: %d required (MaxLives %d) of %d available\n"
        s.Wr_regalloc.Driver.alloc.Wr_regalloc.Alloc.required
        s.Wr_regalloc.Driver.alloc.Wr_regalloc.Alloc.max_lives cfg.Config.registers;
      Printf.printf "Cycles for the whole loop: %d (%d wide iterations x II)\n"
        (ii * wide.Loop.trip_count) wide.Loop.trip_count;
      Printf.printf "Datapath area: %.0f million lambda^2\n"
        (Wr_cost.Area.total_area cfg /. 1e6);
      Format.printf "@.The kernel:@.%a@." Schedule.pp s.Wr_regalloc.Driver.schedule
