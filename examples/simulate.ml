(* From dependence graph to executed cycles: widen a kernel, schedule
   it, assign physical registers with modulo variable expansion, emit
   the VLIW kernel, run it on the cycle-level simulator, and check the
   result against the sequential reference interpreter.

   Run: dune exec examples/simulate.exe [kernel] [config] *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule
module Codegen = Wr_vliw.Codegen
module Sim = Wr_vliw.Sim
module Interp = Wr_vliw.Interp

let () =
  let kernel = if Array.length Sys.argv > 1 then Sys.argv.(1) else "hydro_fragment" in
  let config_str = if Array.length Sys.argv > 2 then Sys.argv.(2) else "2w2(64)" in
  let loop =
    match List.assoc_opt kernel (Wr_workload.Kernels.all ()) with
    | Some l -> l
    | None ->
        Printf.eprintf "unknown kernel %s\n" kernel;
        exit 1
  in
  let cfg =
    match Config.parse config_str with
    | Ok c -> c
    | Error e ->
        prerr_endline e;
        exit 1
  in
  Printf.printf "== 1. the loop =========================================\n";
  Printf.printf "%s: %d operations\n\n" kernel (Loop.num_ops loop);

  Printf.printf "== 2. widen for the %d-wide datapath ====================\n" cfg.Config.width;
  let wide, stats = Wr_widen.Transform.widen loop ~width:cfg.Config.width in
  Format.printf "%a@.@." Wr_widen.Transform.pp_stats stats;

  Printf.printf "== 3. modulo schedule ===================================\n";
  let g = wide.Loop.ddg in
  let r = Wr_sched.Modulo.run (Resource.of_config cfg) ~cycle_model:Cycle_model.Cycles_4 g in
  let s = r.Wr_sched.Modulo.schedule in
  Printf.printf "II=%d (ResMII=%d, RecMII=%d), %d stages\n\n" s.Schedule.ii
    r.Wr_sched.Modulo.res_mii r.Wr_sched.Modulo.rec_mii (Schedule.stage_count s);

  Printf.printf "== 4. MVE register assignment + kernel ==================\n";
  let a = Codegen.allocate g s in
  print_string (Codegen.emit g s a cfg);
  let counts = Codegen.word_counts g s a cfg in
  Printf.printf "(+ %d prologue and %d epilogue words)\n\n" counts.Codegen.prologue_words
    counts.Codegen.epilogue_words;

  Printf.printf "== 5. cycle-level simulation ============================\n";
  let iterations = 40 in
  let sim = Sim.run g s (Sim.mve_mapping a) cfg ~iterations in
  Printf.printf "%d wide iterations in %d cycles (steady-state model: %d + fill/drain)\n"
    iterations sim.Sim.cycles sim.Sim.kernel_cycles;
  Printf.printf "%d operation instances issued\n\n" sim.Sim.issued;

  Printf.printf "== 6. validation against sequential semantics ===========\n";
  let reference = Interp.run ~iterations wide in
  let sim_image = { Interp.memory = sim.Sim.memory; loads = 0; stores = 0; flops = 0 } in
  if Interp.equal_memory reference sim_image then
    Printf.printf "memory image matches the reference interpreter bit-for-bit (%d locations).\n"
      (List.length sim.Sim.memory)
  else begin
    Printf.printf "MISMATCH:\n";
    List.iteri
      (fun i ((arr, addr), l, rv) ->
        if i < 5 then
          Printf.printf "  A%d[%d]: ref=%s sim=%s\n" arr addr
            (match l with Some v -> string_of_float v | None -> "-")
            (match rv with Some v -> string_of_float v | None -> "-"))
      (Interp.diff_memory reference sim_image)
  end
