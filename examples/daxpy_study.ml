(* A single kernel across the whole design space: schedule daxpy on
   every XwY configuration of factors 1-8 with every register file
   size, and print performance alongside hardware cost — the paper's
   methodology at the scale of one loop.

   Run: dune exec examples/daxpy_study.exe [kernel]
   (kernel defaults to daxpy; try dot_product or tridiag_elimination
   to see a recurrence defeat every configuration.) *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule

let () =
  let kernel = if Array.length Sys.argv > 1 then Sys.argv.(1) else "daxpy" in
  let loop =
    match List.assoc_opt kernel (Wr_workload.Kernels.all ()) with
    | Some l -> l
    | None ->
        Printf.eprintf "unknown kernel %s; available:\n  %s\n" kernel
          (String.concat "\n  " (List.map fst (Wr_workload.Kernels.all ())));
        exit 1
  in
  Printf.printf "Kernel %s: %d operations, trip count %d\n\n" kernel (Loop.num_ops loop)
    loop.Loop.trip_count;
  let base_cycles = ref None in
  let rows = ref [] in
  List.iter
    (fun cfg ->
      let cycle_model = Wr_cost.Access_time.cycle_model_of cfg in
      let tc = Wr_cost.Access_time.relative cfg in
      let wide, _ = Wr_widen.Transform.widen loop ~width:cfg.Config.width in
      let cell =
        match
          Wr_regalloc.Driver.run (Resource.of_config cfg) ~cycle_model
            ~registers:cfg.Config.registers wide.Loop.ddg
        with
        | Wr_regalloc.Driver.Scheduled s ->
            let ii = s.Wr_regalloc.Driver.schedule.Schedule.ii in
            let cycles = float_of_int (ii * wide.Loop.trip_count) in
            let wallclock = cycles *. tc in
            if !base_cycles = None then base_cycles := Some wallclock;
            let speedup = Option.get !base_cycles /. wallclock in
            [
              Config.label cfg;
              string_of_int ii;
              Printf.sprintf "%d" s.Wr_regalloc.Driver.alloc.Wr_regalloc.Alloc.required;
              Printf.sprintf "%d+%d" s.Wr_regalloc.Driver.stores_added
                s.Wr_regalloc.Driver.loads_added;
              Printf.sprintf "%.2f" tc;
              Printf.sprintf "%.2f" speedup;
              Printf.sprintf "%.0f" (Wr_cost.Area.total_area cfg /. 1e6);
            ]
        | Wr_regalloc.Driver.Unschedulable _ ->
            [ Config.label cfg; "-"; "-"; "-"; Printf.sprintf "%.2f" tc; "n/a"; "-" ]
      in
      rows := cell :: !rows)
    (Config.paper_grid ~max_factor:8 ~registers:[ 32; 64; 128 ]);
  print_string
    (Wr_util.Table.render
       ~title:(Printf.sprintf "%s across the design space (speed-up at matched wall-clock)" kernel)
       ~headers:[ "config"; "II"; "regs"; "spill"; "Tc"; "speed-up"; "area e6" ]
       (List.rev !rows))
