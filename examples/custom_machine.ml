(* The API is not hard-wired to the paper's grid: define an off-grid
   machine (3 buses, 5 FPUs, width 3, 96 registers — nothing a power of
   two) and run the full methodology against the nearest paper-grid
   configurations.

   Run: dune exec examples/custom_machine.exe *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule

let evaluate label cfg loops =
  let cycle_model = Wr_cost.Access_time.cycle_model_of cfg in
  let tc = Wr_cost.Access_time.relative cfg in
  let total = ref 0.0 and fallbacks = ref 0 in
  Array.iter
    (fun loop ->
      let wide, _ = Wr_widen.Transform.widen loop ~width:cfg.Config.width in
      match
        Wr_regalloc.Driver.run (Resource.of_config cfg) ~cycle_model
          ~registers:cfg.Config.registers wide.Loop.ddg
      with
      | Wr_regalloc.Driver.Scheduled s ->
          total :=
            !total
            +. (float_of_int
                  (s.Wr_regalloc.Driver.schedule.Schedule.ii * wide.Loop.trip_count)
               *. loop.Loop.weight)
      | Wr_regalloc.Driver.Unschedulable _ -> incr fallbacks)
    loops;
  Printf.printf "%-28s Tc=%.2f %-8s cycles=%.3e area=%6.0fe6 fallbacks=%d\n" label tc
    (Cycle_model.to_string cycle_model)
    (!total *. tc)
    (Wr_cost.Area.total_area cfg /. 1e6)
    !fallbacks

let () =
  let loops = Wr_workload.Suite.sample 100 in
  Printf.printf "Weighted wall-clock cost over %d loops (lower is better):\n\n"
    (Array.length loops);
  (* An off-grid design: 3 buses and 5 FPUs (not the 2:1 ratio), width
     3, a 96-entry register file (unpartitioned — a 3-way split would
     need the FPU count divisible by 3). *)
  let custom =
    Config.make ~buses:3 ~fpus:5 ~width:3 ~registers:96 ~partitions:1 ()
  in
  evaluate (Config.label custom ^ " (custom)") custom loops;
  (* The paper-grid neighbours of comparable peak capability. *)
  evaluate "2w4(128:2)" (Config.xwy ~registers:128 ~partitions:2 ~x:2 ~y:4 ()) loops;
  evaluate "4w2(128:4)" (Config.xwy ~registers:128 ~partitions:4 ~x:4 ~y:2 ()) loops;
  evaluate "8w1(128:8)" (Config.xwy ~registers:128 ~partitions:8 ~x:8 ~y:1 ()) loops;
  print_newline ();
  Printf.printf "Custom machine port budget: %d reads + %d writes per partition copy\n"
    (Config.read_ports_per_partition custom)
    (Config.write_ports_per_partition custom);
  List.iter
    (fun (g : Wr_cost.Sia.generation) ->
      Printf.printf "  %s: %s (%.1f%% of die)\n" (Wr_cost.Sia.label g)
        (if Wr_cost.Area.implementable custom g then "implementable" else "too big")
        (100.0 *. Wr_cost.Area.chip_fraction custom g))
    Wr_cost.Sia.generations
