(* The Livermore kernels across the paper's central design choice:
   schedule each kernel on 8w1 and 4w2 (equal peak capability, 128
   registers) and report which machine wins at matched wall-clock —
   the paper's conclusion, kernel by kernel on a classic suite.

   Run: dune exec examples/livermore.exe *)

module Config = Wr_machine.Config
module Cycle_model = Wr_machine.Cycle_model
module Resource = Wr_machine.Resource
module Loop = Wr_ir.Loop
module Schedule = Wr_sched.Schedule

let evaluate (cfg : Config.t) loop =
  let cycle_model = Wr_cost.Access_time.cycle_model_of cfg in
  let tc = Wr_cost.Access_time.relative cfg in
  let wide, _ = Wr_widen.Transform.widen loop ~width:cfg.Config.width in
  match
    Wr_regalloc.Driver.run (Resource.of_config cfg) ~cycle_model
      ~registers:cfg.Config.registers wide.Loop.ddg
  with
  | Wr_regalloc.Driver.Scheduled s ->
      let cycles =
        float_of_int (s.Wr_regalloc.Driver.schedule.Schedule.ii * wide.Loop.trip_count)
      in
      Some (cycles *. tc, s.Wr_regalloc.Driver.schedule.Schedule.ii)
  | Wr_regalloc.Driver.Unschedulable _ -> None

let () =
  let a = Config.xwy ~registers:128 ~partitions:8 ~x:8 ~y:1 () in
  let b = Config.xwy ~registers:128 ~partitions:4 ~x:4 ~y:2 () in
  Printf.printf "Livermore kernels: %s vs %s at matched wall-clock\n\n" (Config.label a)
    (Config.label b);
  let wins_a = ref 0 and wins_b = ref 0 in
  let rows =
    List.map
      (fun (name, loop) ->
        let cell cfg =
          match evaluate cfg loop with
          | Some (wall, ii) -> (wall, Printf.sprintf "%.0f (II=%d)" wall ii)
          | None -> (infinity, "n/a")
        in
        let wa, ta = cell a and wb, tb = cell b in
        let verdict =
          if wa < wb *. 0.99 then (incr wins_a; Config.label_short a)
          else if wb < wa *. 0.99 then (incr wins_b; Config.label_short b)
          else "tie"
        in
        [
          name;
          (if Wr_ir.Ddg.has_recurrence loop.Loop.ddg then "rec" else "par");
          ta;
          tb;
          verdict;
        ])
      (Wr_workload.Livermore.all ())
  in
  print_string
    (Wr_util.Table.render
       ~headers:
         [ "kernel"; "kind"; Config.label_short a ^ " wall"; Config.label_short b ^ " wall";
           "winner" ]
       rows);
  Printf.printf "\n%s wins %d kernels, %s wins %d (rest ties/n.a.)\n" (Config.label_short a)
    !wins_a (Config.label_short b) !wins_b;
  Printf.printf
    "The split mirrors the paper: the widened machine wins the parallel kernels (in half \
     the area), while the replicated machine's shorter cycle time wins the recurrence-bound \
     ones (latency adaptation shortens the critical chains in wall-clock).  Weighted over a \
     whole workload, the mixes win -- Figure 9.\n"
