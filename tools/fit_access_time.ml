(* Offline calibration of the register-file access-time model against
   the paper's Table 4.  Grid-searches the two exponents and solves the
   linear coefficients by least squares; prints the best coefficient
   set (to be pasted into lib/cost/access_time.ml) and the residuals.

   Run: dune exec tools/fit_access_time.exe *)

module Config = Wr_machine.Config

(* Table 4: (x, y) -> relative access time at 32/64/128/256 registers. *)
let table4 =
  [
    ((1, 1), [| 1.00; 1.05; 1.18; 1.34 |]);
    ((2, 1), [| 1.49; 1.54; 1.70; 1.87 |]);
    ((1, 2), [| 1.10; 1.15; 1.29; 1.45 |]);
    ((4, 1), [| 2.44; 2.51; 2.69; 2.90 |]);
    ((2, 2), [| 1.65; 1.72; 1.87; 2.06 |]);
    ((1, 4), [| 1.22; 1.27; 1.43; 1.60 |]);
    ((8, 1), [| 4.32; 4.41; 4.61; 4.87 |]);
    ((4, 2), [| 2.75; 2.82; 3.00; 3.23 |]);
    ((2, 4), [| 1.85; 1.92; 2.09; 2.29 |]);
    ((1, 8), [| 1.39; 1.45; 1.62; 1.80 |]);
    ((16, 1), [| 8.04; 8.15; 8.39; 8.72 |]);
    ((8, 2), [| 4.89; 4.99; 5.20; 5.48 |]);
    ((4, 4), [| 3.10; 3.18; 3.38; 3.61 |]);
    ((2, 8), [| 2.12; 2.20; 2.38; 2.60 |]);
    ((1, 16), [| 1.68; 1.75; 1.93; 2.14 |]);
  ]

let sizes = [| 32; 64; 128; 256 |]

let samples =
  List.concat_map
    (fun ((x, y), times) ->
      List.init 4 (fun i ->
          let c = Config.xwy ~registers:sizes.(i) ~x ~y () in
          (c, times.(i))))
    table4

(* Feature vector for one configuration given the exponents: wordline
   term (row length)^p, bitline term height^r * registers^s. *)
let features p (r, s) (c : Config.t) =
  let z = float_of_int c.Config.registers in
  let b = float_of_int (Config.bits_per_register c) in
  let cell =
    Wr_cost.Register_cell.dimensions
      ~reads:(Config.read_ports_per_partition c)
      ~writes:(Config.write_ports_per_partition c)
  in
  [|
    log z;
    (b *. cell.Wr_cost.Register_cell.width) ** p;
    (cell.Wr_cost.Register_cell.height ** r) *. (z ** s);
    1.0;
  |]

(* Solve the 4x4 normal equations by Gaussian elimination. *)
let solve_ls rows targets =
  let n = 4 in
  let ata = Array.make_matrix n n 0.0 and atb = Array.make n 0.0 in
  List.iter2
    (fun row t ->
      for i = 0 to n - 1 do
        atb.(i) <- atb.(i) +. (row.(i) *. t);
        for j = 0 to n - 1 do
          ata.(i).(j) <- ata.(i).(j) +. (row.(i) *. row.(j))
        done
      done)
    rows targets;
  (* Augmented elimination with partial pivoting. *)
  let a = Array.init n (fun i -> Array.append ata.(i) [| atb.(i) |]) in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!pivot);
    a.(!pivot) <- tmp;
    if Float.abs a.(col).(col) < 1e-12 then a.(col).(col) <- 1e-12;
    for r = 0 to n - 1 do
      if r <> col then begin
        let f = a.(r).(col) /. a.(col).(col) in
        for k = col to n do
          a.(r).(k) <- a.(r).(k) -. (f *. a.(col).(k))
        done
      end
    done
  done;
  Array.init n (fun i -> a.(i).(n) /. a.(i).(i))

let evaluate p q =
  let rows = List.map (fun (c, _) -> features p q c) samples in
  let targets = List.map snd samples in
  let coef = solve_ls rows targets in
  let base = Config.xwy ~registers:32 ~x:1 ~y:1 () in
  let predict c =
    let f = features p q c in
    let raw = ref 0.0 in
    Array.iteri (fun i v -> raw := !raw +. (coef.(i) *. v)) f;
    !raw
  in
  let base_t = predict base in
  let err = ref 0.0 and maxerr = ref 0.0 in
  List.iter
    (fun (c, target) ->
      let rel = predict c /. base_t in
      let e = Float.abs (rel -. target) /. target in
      err := !err +. (e *. e);
      if e > !maxerr then maxerr := e)
    samples;
  (sqrt (!err /. float_of_int (List.length samples)), !maxerr, coef)

let () =
  let best = ref (infinity, 0.0, [||], 0.0, (0.0, 0.0)) in
  let p = ref 0.60 in
  while !p <= 1.201 do
    let r = ref 0.80 in
    while !r <= 1.301 do
      let s = ref 0.00 in
      while !s <= 0.301 do
        let rms, mx, coef = evaluate !p (!r, !s) in
        let brms, _, _, _, _ = !best in
        if rms < brms then best := (rms, mx, coef, !p, (!r, !s));
        s := !s +. 0.005
      done;
      r := !r +. 0.01
    done;
    p := !p +. 0.01
  done;
  let rms, mx, coef, p, (r, s) = !best in
  Printf.printf "best fit: p=%.3f r=%.3f s=%.3f rms=%.4f max=%.4f\n" p r s rms mx;
  Printf.printf
    "coefficients: { decode = %.6g; wordline = %.6g; wordline_exp = %.3f; bitline = %.6g; height_exp = %.3f; regs_exp = %.3f; constant = %.6g }\n"
    coef.(0) coef.(1) p coef.(2) r s coef.(3);
  (* Residual table for EXPERIMENTS.md. *)
  let predict c =
    let f = features p (r, s) c in
    let raw = ref 0.0 in
    Array.iteri (fun i v -> raw := !raw +. (coef.(i) *. v)) f;
    !raw
  in
  let base_t = predict (Config.xwy ~registers:32 ~x:1 ~y:1 ()) in
  List.iter
    (fun ((x, y), times) ->
      Printf.printf "%2dw%-2d " x y;
      Array.iteri
        (fun i target ->
          let c = Config.xwy ~registers:sizes.(i) ~x ~y () in
          Printf.printf " %5.2f/%5.2f" (predict c /. base_t) target)
        times;
      print_newline ())
    table4
